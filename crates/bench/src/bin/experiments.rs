//! Experiment driver: regenerates every table and figure of the paper,
//! and serves/drives the `dap-wire/v1` network stack.
//!
//! ```text
//! cargo run --release -p dap-bench --bin experiments -- <id> [flags]
//! cargo run --release -p dap-bench --bin experiments -- merge <shard.json>... [--out merged.json]
//! cargo run --release -p dap-bench --bin experiments -- serve --addr H:P --mech pm|sw --eps E --users N [...]
//! cargo run --release -p dap-bench --bin experiments -- submit --addrs H:P,... | --local [...]
//! cargo run --release -p dap-bench --bin experiments -- chaos --users N [--daemons D] [--kill-restart] [...]
//! cargo run --release -p dap-bench --bin experiments -- dispatch <id> --addrs H:P,... [flags]
//!
//! ids:    fig4 table1 fig5 fig6 fig7 fig8 fig9 fig10
//!         ablation-weights ablation-split ablation-mechanism all
//! flags:  --n <users>          population per trial   (default 20000)
//!         --trials <t>         trials per cell        (default 3)
//!         --seed <s>           master seed            (default 42)
//!         --max-dout <d>       EMF bucket cap         (default 128)
//!         --paper-scale        n = 1e6, max-dout = 512
//!         --out <path>         write results JSON (see crate::results)
//!         --shard <i>/<n>      run partition i of n of the cell list and
//!                              write its shard JSON to --out (required);
//!                              `merge` reassembles shards, renders the
//!                              tables and is bit-identical to an
//!                              unsharded run
//!         --journal <dir>      (with --shard) append each finished cell
//!                              to a write-ahead journal; a re-run resumes,
//!                              skipping cells already recorded
//!         --bench-json <path>  run the experiment --bench-repeats times and
//!                              write median wall-clock JSON (perf tracking)
//!         --bench-repeats <r>  timed repeats for --bench-json (default 3)
//!
//! serve:  runs one aggregation daemon (blocks until a shutdown frame):
//!         --addr <host:port>   listen address (required)
//!         --mech pm|sw         deployment mechanism    (default pm)
//!         --eps <e>            per-user budget ε       (default 1)
//!         --eps0 <e>           minimum group budget    (default 1/16)
//!         --users <n>          deployment user count   (required)
//!         --plan-seed <s>      shared plan seed        (default 7)
//!         --max-dout <d>       EMF bucket cap          (default 64)
//!         --journal <dir>      write-ahead journal directory: every
//!                              accepted ingest is durable before it is
//!                              acknowledged, and a restarted daemon
//!                              recovers the session bit-for-bit.
//!                              Durability covers a killed *process* by
//!                              default; add --journal-sync to survive
//!                              OS crashes and power loss too
//!         --journal-sync       fsync the journal per accepted record
//!                              (power-failure durability, slower acks)
//!         --checkpoint-every <n>  compact the journal into a checkpoint
//!                              once it holds n records (default 0 = never)
//!         --idle-timeout <ms>  close a connection whose next frame does
//!                              not arrive in time with a typed timeout
//!                              farewell (default 0 = wait forever)
//!         --secagg <i>/<k>     serve share i of a k-server secret-shared
//!                              deployment: the session runs in masked
//!                              mode, accepts only share-batch frames, and
//!                              neither memory nor journal ever holds a
//!                              plaintext report
//!         --auth-token <hex,...>  only clients whose hello carries one of
//!                              these tokens may speak; every other frame
//!                              is refused with the typed unauthorized
//!                              error (connection stays open)
//!         --legacy             serve the pre-reactor thread-per-connection
//!                              path (one lock + one journal fsync per
//!                              frame) — kept as the storm baseline
//!         --workers <n>        reactor apply workers          (default 2)
//!         --queue-ops <n>      reactor apply-queue frame bound (default 256);
//!                              a frame arriving at a full queue is shed
//!                              with the typed, retryable throttle
//!         --queue-bytes <n>    reactor apply-queue byte bound (default 8 MiB)
//!         --max-conns <n>      open-connection cap            (default 1024);
//!                              connections beyond it are told the throttle
//!                              farewell at accept
//!         --retry-after-ms <ms>  backoff hint carried in every throttle
//!                              reply                          (default 20)
//!
//! storm:  synthetic client swarm against an in-process daemon fleet —
//!         the reactor's load harness (stdout ends with the greppable
//!         `lost 0, dup 0` exactly-once line):
//!         --connections <m>    client connections      (default 32)
//!         --reports <n>        reports per connection  (default 2000)
//!         --batch <b>          reports per seq-batch   (default 16)
//!         --window <w>         frames each client keeps in flight
//!                              (Go-Back-N pipelining)  (default 16)
//!         --daemons <d>        in-process daemons      (default 1)
//!         --seed <s>           schedule seed           (default 42)
//!         --legacy             run the thread-per-connection baseline
//!                              instead of the reactor
//!         --no-journal         skip the write-ahead journal (the default
//!                              fleet journals + fsyncs, where the
//!                              reactor's group commit earns its win)
//!         --queue-ops/--workers/--retry-after-ms  reactor bounds (storm
//!                              defaults: one worker, a 32-frame queue,
//!                              1 ms retry hint; shrink --queue-ops to
//!                              force backpressure sheds)
//!         --trials <t>         bench-json trials per mode; the medians
//!                              are recorded               (default 3)
//!         --bench-json <path>  alternate legacy/reactor trials and write
//!                              the median comparison (BENCH_serve.json)
//!
//! submit: streams a simulated population to daemons (disjoint group
//!         ownership), pulls serialized parts, merges + finalizes at the
//!         coordinator — bit-identical to `--local` (the in-process
//!         `Dap::run_schemes` reference, printed in the same format):
//!         --addrs <a,b,...>    daemon addresses (or --local)
//!         --dataset <name>    honest-value dataset    (default taxi)
//!         --gamma <g>          coalition share         (default 0.2)
//!         --data-seed <s>      honest-value seed       (default 1)
//!         --schemes all|<lbl>  schemes to finalize     (default all)
//!         --expect-rejection   after streaming, send one extra report and
//!                              require the typed over-quota WireError
//!         --shutdown           stop the daemons afterwards
//!         --pull-only          skip the population stream: pull the parts
//!                              the daemons already hold (recovered from
//!                              their journals), merge and finalize
//!         --timeout-ms <ms>    connect/read/write deadlines on every wire
//!                              op (default 0 = wait forever); expiry is
//!                              the typed, retryable WireError::Timeout
//!         --retry-attempts <n> tries per wire op before a daemon is
//!                              declared dead and its groups reroute to a
//!                              survivor (default 5)
//!         --retry-budget <n>   total retries across the deployment
//!                              (default 256)
//!         --retry-base-ms <ms> first backoff; doubles per attempt, capped,
//!                              with deterministic seeded jitter
//!         --retry-seed <s>     jitter seed (default 0xdab5eed)
//!         --secagg <k>         secret-shared submit: deal each chunk's
//!                              bucket-count contribution as k additive
//!                              shares, one per daemon (--addrs must list
//!                              exactly k); pulls the k masked parts and
//!                              reconstructs — still bit-identical to
//!                              --local, and no daemon ever saw a report
//!         --secagg-seed <hex>  the dealer's mask seed (default 0xda5eed11)
//!         --auth-token <hex>   present this token in every hello
//!         (plus the serve deployment flags above; per-daemon retry/
//!         failover summaries are printed to stderr)
//!
//! chaos:  spawns N journaled daemon processes behind seeded
//!         fault-injection proxies (drop/delay/stall/reset per connection),
//!         submits through them — with --kill-restart each daemon is
//!         SIGKILLed mid-run and restarted on its journal — and requires
//!         the finalized outputs to be bit-identical to the in-process
//!         reference; stdout matches `submit --local` byte for byte:
//!         --daemons <n>        fleet size               (default 2)
//!         --chaos-seed <s>     fault-schedule seed      (default 7)
//!         --faults <n>         faulted connections per proxy before the
//!                              schedule runs clean      (default 6)
//!         --kill-restart       SIGKILL + journal-restart every daemon
//!         --secagg             run the fleet as the secret-shared tier
//!                              (daemon i serves share i of --daemons) and
//!                              drive the masked dealer path through the
//!                              same faults — the bit-identity assertion
//!                              is unchanged
//!         --secagg-seed <hex>  dealer mask seed      (default 0xda5eed11)
//!         --auth-token <hex>   start daemons with this allowlist token
//!                              and present it from the coordinator
//!         (plus the submit population/deployment/retry flags;
//!         --timeout-ms defaults to 500 and must be nonzero here)
//!
//! dispatch: runs shard i/n of <id> on daemon i over the wire, merges and
//!         renders exactly like a local run (`--n/--trials/--seed/
//!         --max-dout/--paper-scale/--out` as above, plus --addrs)
//! ```

use dap_bench::cell::{Cell, ExperimentId};
use dap_bench::common::{write_bench_json, ExpOptions};
use dap_bench::engine::{run_cells_subset, ResultMap};
use dap_bench::report_cache::ReportCache;
use dap_bench::results::{ResultSet, ShardInfo};
use dap_bench::chaos::{run_chaos, ChaosSpec};
use dap_bench::serve::{
    parse_dataset, render_outputs, submit_header, ServeSpec, SubmitOptions, SubmitSpec, WireMech,
};
use dap_bench::storm::{run_storm, storm_header, write_storm_bench_json, StormSpec};
use dap_core::net::{Deadlines, ReactorOptions, RetryPolicy, ServeOptions};
use dap_core::Scheme;
use dap_datasets::PopulationCache;
use std::net::TcpListener;
use std::ops::Range;
use std::time::{Duration, Instant};

/// Flags the binary owns; `ExpOptions::parse_allowing` skips exactly these.
const BINARY_FLAGS: [&str; 5] =
    ["--bench-json", "--bench-repeats", "--out", "--shard", "--journal"];

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args.first().map(String::as_str).unwrap_or("help").to_string();

    if id == "help" || id == "--help" {
        println!("usage: experiments <id> [--n N] [--trials T] [--seed S] [--max-dout D] [--paper-scale] [--out PATH] [--shard I/N [--journal DIR]] [--bench-json PATH] [--bench-repeats R]");
        println!("       experiments merge <shard.json>... [--out PATH]");
        println!("       experiments serve --addr H:P [--mech pm|sw] [--eps E] [--eps0 E0] --users N [--plan-seed S] [--max-dout D] [--idle-timeout MS] [--legacy | --workers W --queue-ops Q --queue-bytes B --max-conns C --retry-after-ms MS] [--secagg I/K] [--auth-token HEX,..] [--journal DIR [--journal-sync] [--checkpoint-every N]]");
        println!("       experiments storm [--connections M] [--reports N] [--batch B] [--window W] [--daemons D] [--seed S] [--legacy] [--no-journal] [--workers W] [--queue-ops Q] [--retry-after-ms MS] [--trials T] [--bench-json PATH]");
        println!("       experiments submit (--addrs H:P,... | --local) [deployment flags] [--dataset D] [--gamma G] [--data-seed S] [--schemes all|LBL,..] [--timeout-ms MS] [--retry-attempts N] [--retry-budget N] [--retry-base-ms MS] [--retry-seed S] [--secagg K] [--secagg-seed HEX] [--auth-token HEX] [--expect-rejection] [--shutdown] [--pull-only]");
        println!("       experiments chaos [deployment/population flags] [--daemons N] [--chaos-seed S] [--faults N] [--kill-restart] [--secagg] [--secagg-seed HEX] [--auth-token HEX] [retry flags]");
        println!("       experiments dispatch <id> --addrs H:P,... [--n N] [--trials T] [--seed S] [--max-dout D] [--paper-scale] [--out PATH]");
        println!("       experiments shutdown --addrs H:P,... [--auth-token HEX]");
        println!("ids: fig4 table1 fig5 fig6 fig7 fig8 fig9 fig10 ablation-weights ablation-split ablation-mechanism all");
        return;
    }
    if id == "merge" {
        merge_cmd(&args[1..]);
        return;
    }
    if id == "serve" {
        serve_cmd(&args[1..]);
        return;
    }
    if id == "storm" {
        storm_cmd(&args[1..]);
        return;
    }
    if id == "submit" {
        submit_cmd(&args[1..]);
        return;
    }
    if id == "chaos" {
        chaos_cmd(&args[1..]);
        return;
    }
    if id == "dispatch" {
        dispatch_cmd(&args[1..]);
        return;
    }
    if id == "shutdown" {
        shutdown_cmd(&args[1..]);
        return;
    }

    let opts = match ExpOptions::parse_allowing(&args, &BINARY_FLAGS) {
        Ok(opts) => opts,
        Err(msg) => fail(&msg),
    };
    let out_path = flag_value(&args, "--out").unwrap_or_else(|msg| fail(&msg));
    let shard = parse_shard(&args).unwrap_or_else(|msg| fail(&msg));
    let journal_dir = flag_value(&args, "--journal").unwrap_or_else(|msg| fail(&msg));
    if journal_dir.is_some() && shard.is_none() {
        fail("--journal requires --shard (the resumable cell journal is a shard feature)");
    }
    let bench_json = flag_value(&args, "--bench-json").unwrap_or_else(|msg| fail(&msg));
    let bench_repeats: usize = match flag_value(&args, "--bench-repeats") {
        Ok(Some(v)) => match v.parse() {
            Ok(r) if r > 0 => r,
            _ => fail(&format!("invalid value '{v}' for flag --bench-repeats")),
        },
        Ok(None) => 3,
        Err(msg) => fail(&msg),
    };
    // Timing JSON only makes sense for a complete single experiment;
    // reject the aggregate id before hours of work, not after.
    if bench_json.is_some() && (id == "all" || shard.is_some()) {
        fail(&format!("--bench-json requires a single unsharded experiment id (got '{id}')"));
    }

    let ids: Vec<ExperimentId> = if id == "all" {
        ExperimentId::ALL.to_vec()
    } else {
        match ExperimentId::from_name(&id) {
            Some(e) => vec![e],
            None => fail(&format!("unknown experiment id '{id}'; run `experiments help`")),
        }
    };

    // Enumerate the full (concatenated) cell list once; indices in shard
    // files and result sets refer to this enumeration.
    let mut cells: Vec<Cell> = Vec::new();
    let mut segments: Vec<(ExperimentId, Range<usize>)> = Vec::new();
    for e in &ids {
        let start = cells.len();
        cells.extend(e.cells(&opts));
        segments.push((*e, start..cells.len()));
    }

    if let Some((shard_index, shard_count)) = shard {
        // Shard mode: run a deterministic partition, write its JSON, no
        // tables (partial results cannot render full tables).
        let Some(path) = out_path else {
            fail("--shard requires --out <path> for the shard JSON");
        };
        let start = Instant::now();
        let indices: Vec<usize> =
            (0..cells.len()).filter(|i| i % shard_count == shard_index).collect();
        let results = match &journal_dir {
            Some(dir) => {
                let man = dap_bench::journal::manifest(&id, &opts, shard_index, shard_count);
                let (results, resumed) = dap_bench::journal::run_cells_journaled(
                    std::path::Path::new(dir),
                    &man,
                    &opts,
                    &cells,
                    &indices,
                )
                .unwrap_or_else(|msg| fail(&msg));
                eprintln!("[journal {dir}: {resumed} of {} cells resumed]", indices.len());
                results
            }
            None => run_cells_subset(&opts, &cells, &indices),
        };
        let set = ResultSet::build(
            &id,
            &opts,
            Some(ShardInfo { index: shard_index, count: shard_count, cells_total: cells.len() }),
            &cells,
            &results,
        );
        if let Err(e) = std::fs::write(&path, set.to_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "[shard {}/{}: {} of {} cells in {:.1?} -> {}]",
            shard_index,
            shard_count,
            indices.len(),
            cells.len(),
            start.elapsed(),
            path
        );
        return;
    }

    println!(
        "# options: n = {}, trials = {}, seed = {}, max_d_out = {}\n",
        opts.n, opts.trials, opts.seed, opts.max_d_out
    );
    let start = Instant::now();
    let mut timed_ms: Vec<f64> = Vec::new();
    let mut all_results = Vec::new();
    for (e, range) in &segments {
        let name = e.name();
        let timing = bench_json.is_some();
        let repeats = if timing { bench_repeats } else { 1 };
        let indices: Vec<usize> = range.clone().collect();
        for rep in 0..repeats {
            if timing && rep == 0 {
                // Repeat 1 measures the cold path (population sampling and
                // report perturbation included); repeats 2+ run warm, so
                // with 3 repeats the recorded median is the warm steady
                // state an `experiments all` sweep actually sees — that is
                // the regime the report cache exists to speed up, and the
                // methodology BENCH_fig7.json has tracked since the cache
                // landed.
                PopulationCache::global().clear();
                ReportCache::global().clear();
            }
            let t = Instant::now();
            let results = run_cells_subset(&opts, &cells, &indices);
            print!("{}", e.render(&opts, &ResultMap::from_results(&results)));
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if timing {
                timed_ms.push(ms);
                eprintln!("[{name} repeat {} of {repeats}: {ms:.1} ms]", rep + 1);
            } else {
                eprintln!("[{name} done in {:.1?}]", t.elapsed());
            }
            if rep + 1 == repeats {
                all_results.extend(results);
            }
        }
    }

    if id == "all" {
        // The paper-scale win the two caches buy must be observable without
        // a profiler: strictly fewer generations (misses) than consumers
        // (hits + misses) proves cross-cell reuse of both the sampled
        // values and the perturbed reports built from them.
        let (pop, rep) = dap_bench::engine::cache_stats();
        eprintln!(
            "[population cache: {} hits, {} misses, {} evictions — {} generations served {} requests]",
            pop.hits,
            pop.misses,
            pop.evictions,
            pop.misses,
            pop.hits + pop.misses
        );
        eprintln!(
            "[report cache: {} hits, {} misses, {} evictions — {} perturbations served {} requests]",
            rep.hits,
            rep.misses,
            rep.evictions,
            rep.misses,
            rep.hits + rep.misses
        );
    }
    if let Some(path) = out_path {
        let set = ResultSet::build(&id, &opts, None, &cells, &all_results);
        if let Err(e) = std::fs::write(&path, set.to_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[wrote {path}]");
    }
    if let Some(path) = bench_json {
        // The calibration yardstick runs on the same machine moments after
        // the timed repeats, so the JSON's `median_over_calib` ratio is
        // comparable across containers of different speeds.
        let calib_ms = dap_bench::common::calibrate_dense_solve_ms();
        eprintln!("[calibration: dense-reference solve {calib_ms:.1} ms]");
        if let Err(e) = write_bench_json(&path, &id, &opts, &timed_ms, calib_ms) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[wrote {path}]");
    }
    eprintln!("[total {:.1?}]", start.elapsed());
}

/// `experiments merge <shard.json>... [--out merged.json]`: reassembles a
/// sharded run, verifies option/coordinate compatibility against a fresh
/// enumeration, renders the tables exactly as an unsharded run would, and
/// optionally writes the combined JSON.
fn merge_cmd(args: &[String]) {
    let out_path = flag_value(args, "--out").unwrap_or_else(|msg| fail(&msg));
    let paths: Vec<&String> = {
        // Everything that isn't --out and isn't --out's value is a shard
        // file path.
        let mut paths = Vec::new();
        let mut skip = false;
        for (i, a) in args.iter().enumerate() {
            if skip {
                skip = false;
                continue;
            }
            if a == "--out" {
                skip = true;
                continue;
            }
            if a.starts_with("--") {
                fail(&format!("unknown flag {a} for merge"));
            }
            paths.push(&args[i]);
        }
        paths
    };
    if paths.is_empty() {
        fail("merge needs at least one shard JSON path");
    }

    let mut shards = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => fail(&format!("cannot read {path}: {e}")),
        };
        match ResultSet::from_json(&text) {
            Ok(set) => shards.push(set),
            Err(e) => fail(&format!("{path}: {e}")),
        }
    }
    let merged = match ResultSet::merge(shards) {
        Ok(m) => m,
        Err(e) => fail(&format!("merge failed: {e}")),
    };

    // Re-enumerate and verify the file's coordinates against this build.
    let opts = merged.options;
    let ids: Vec<ExperimentId> = if merged.experiment == "all" {
        ExperimentId::ALL.to_vec()
    } else {
        match ExperimentId::from_name(&merged.experiment) {
            Some(e) => vec![e],
            None => fail(&format!("unknown experiment '{}' in shard files", merged.experiment)),
        }
    };
    let mut cells: Vec<Cell> = Vec::new();
    let mut segments: Vec<(ExperimentId, Range<usize>)> = Vec::new();
    for e in &ids {
        let start = cells.len();
        cells.extend(e.cells(&opts));
        segments.push((*e, start..cells.len()));
    }
    if let Err(e) = merged.verify_against(&cells) {
        fail(&format!("merge failed: {e}"));
    }

    println!(
        "# options: n = {}, trials = {}, seed = {}, max_d_out = {}\n",
        opts.n, opts.trials, opts.seed, opts.max_d_out
    );
    let map = merged.result_map();
    for (e, _) in &segments {
        print!("{}", e.render(&opts, &map));
    }
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, merged.to_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[wrote {path}]");
    }
    eprintln!("[merged {} shards, {} cells]", paths.len(), merged.cells.len());
}

/// Rejects unknown `--flags` for the hand-parsed subcommands (same
/// no-silent-ignore rule as `ExpOptions::parse`): `valued` flags consume
/// the next token, `boolean` flags stand alone.
fn check_flags(args: &[String], valued: &[&str], boolean: &[&str]) {
    let mut skip = false;
    for arg in args {
        if skip {
            skip = false;
            continue;
        }
        if arg.starts_with("--") {
            if valued.contains(&arg.as_str()) {
                skip = true;
            } else if !boolean.contains(&arg.as_str()) {
                fail(&format!("unknown flag {arg}; run `experiments help` for the flag list"));
            }
        }
    }
}

/// Value of `flag` parsed as `T`, or `default` when absent.
fn flag_parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    match flag_value(args, flag) {
        Ok(Some(v)) => v
            .parse()
            .unwrap_or_else(|_| fail(&format!("invalid value '{v}' for flag {flag}"))),
        Ok(None) => default,
        Err(msg) => fail(&msg),
    }
}

/// The deployment flags shared by `serve` and `submit`.
const DEPLOY_FLAGS: [&str; 6] = ["--mech", "--eps", "--eps0", "--users", "--plan-seed", "--max-dout"];

/// The coordinator fault-tolerance flags shared by `submit` and `chaos`.
const RETRY_FLAGS: [&str; 5] =
    ["--retry-attempts", "--retry-budget", "--retry-base-ms", "--retry-seed", "--timeout-ms"];

/// `--retry-*` flags → a [`RetryPolicy`] (defaults from the policy itself).
fn parse_retry(args: &[String]) -> RetryPolicy {
    let d = RetryPolicy::default();
    RetryPolicy {
        attempts: flag_parse(args, "--retry-attempts", d.attempts),
        budget: flag_parse(args, "--retry-budget", d.budget),
        base: Duration::from_millis(flag_parse(args, "--retry-base-ms", d.base.as_millis() as u64)),
        seed: flag_parse(args, "--retry-seed", d.seed),
        cap: d.cap,
    }
}

/// `--timeout-ms <ms>` → uniform connect/read/write deadlines. `0` means
/// wait forever (the pre-hardening behavior); `default_ms` applies when
/// the flag is absent.
fn parse_deadlines(args: &[String], default_ms: u64) -> Deadlines {
    match flag_parse(args, "--timeout-ms", default_ms) {
        0 => Deadlines::default(),
        ms => Deadlines::all(Duration::from_millis(ms)),
    }
}

/// A token/seed value: hex with an optional `0x` prefix.
fn parse_hex_u64(flag: &str, v: &str) -> u64 {
    let digits = v.strip_prefix("0x").unwrap_or(v);
    u64::from_str_radix(digits, 16)
        .unwrap_or_else(|_| fail(&format!("invalid hex value '{v}' for flag {flag}")))
}

/// `--auth-token <hex>` → the single token a client presents.
fn parse_auth_token(args: &[String]) -> Option<u64> {
    match flag_value(args, "--auth-token") {
        Ok(Some(v)) => Some(parse_hex_u64("--auth-token", &v)),
        Ok(None) => None,
        Err(msg) => fail(&msg),
    }
}

/// `--secagg-seed <hex>` → the dealer's mask seed.
fn parse_secagg_seed(args: &[String]) -> u64 {
    match flag_value(args, "--secagg-seed") {
        Ok(Some(v)) => parse_hex_u64("--secagg-seed", &v),
        Ok(None) => 0xda5e_ed11,
        Err(msg) => fail(&msg),
    }
}

/// The ingestion-reactor tuning flags shared by `serve` and `storm`.
const REACTOR_FLAGS: [&str; 5] =
    ["--workers", "--queue-ops", "--queue-bytes", "--max-conns", "--retry-after-ms"];

/// `--legacy` / reactor tuning flags → the [`ServeOptions::reactor`]
/// field, starting from `base` (the stock defaults for `serve`, the
/// deliberately starved bounds for `storm`).
fn parse_reactor(args: &[String], base: ReactorOptions) -> Option<ReactorOptions> {
    if args.iter().any(|a| a == "--legacy") {
        for flag in REACTOR_FLAGS {
            if args.iter().any(|a| a == flag) {
                fail(&format!("{flag} tunes the reactor; it cannot be combined with --legacy"));
            }
        }
        return None;
    }
    Some(ReactorOptions {
        workers: flag_parse(args, "--workers", base.workers),
        queue_ops: flag_parse(args, "--queue-ops", base.queue_ops),
        queue_bytes: flag_parse(args, "--queue-bytes", base.queue_bytes),
        max_connections: flag_parse(args, "--max-conns", base.max_connections),
        retry_after_ms: flag_parse(args, "--retry-after-ms", base.retry_after_ms),
        ..base
    })
}

/// The population flags shared by `submit` and `chaos`.
fn parse_submit_spec(args: &[String]) -> SubmitSpec {
    let dataset = match flag_value(args, "--dataset") {
        Ok(Some(name)) => parse_dataset(&name)
            .unwrap_or_else(|| fail(&format!("unknown dataset '{name}'"))),
        Ok(None) => dap_datasets::Dataset::Taxi,
        Err(msg) => fail(&msg),
    };
    SubmitSpec {
        serve: parse_serve_spec(args),
        dataset,
        gamma: flag_parse(args, "--gamma", 0.2),
        data_seed: flag_parse(args, "--data-seed", 1),
    }
}

fn parse_serve_spec(args: &[String]) -> ServeSpec {
    let mech = match flag_value(args, "--mech") {
        Ok(Some(name)) => WireMech::from_name(&name)
            .unwrap_or_else(|| fail(&format!("unknown mechanism '{name}' (use pm or sw)"))),
        Ok(None) => WireMech::Pm,
        Err(msg) => fail(&msg),
    };
    let users = match flag_value(args, "--users") {
        Ok(Some(v)) => v
            .parse()
            .unwrap_or_else(|_| fail(&format!("invalid value '{v}' for flag --users"))),
        Ok(None) => fail("--users is required (the deployment's total user count)"),
        Err(msg) => fail(&msg),
    };
    ServeSpec {
        mech,
        eps: flag_parse(args, "--eps", 1.0),
        eps0: flag_parse(args, "--eps0", 1.0 / 16.0),
        users,
        seed: flag_parse(args, "--plan-seed", 7),
        max_d_out: flag_parse(args, "--max-dout", 64),
        secagg: None,
    }
}

/// `experiments serve`: one aggregation daemon over `dap-wire/v1`,
/// blocking until a client sends `shutdown`.
fn serve_cmd(args: &[String]) {
    check_flags(
        args,
        &["--addr", "--journal", "--checkpoint-every", "--idle-timeout", "--secagg", "--auth-token"]
            .iter()
            .chain(&DEPLOY_FLAGS)
            .chain(&REACTOR_FLAGS)
            .copied()
            .collect::<Vec<_>>(),
        &["--journal-sync", "--legacy"],
    );
    let addr = match flag_value(args, "--addr") {
        Ok(Some(a)) => a,
        Ok(None) => fail("--addr <host:port> is required"),
        Err(msg) => fail(&msg),
    };
    let journal_dir = flag_value(args, "--journal").unwrap_or_else(|msg| fail(&msg));
    let checkpoint_every: usize = flag_parse(args, "--checkpoint-every", 0);
    let journal_sync = args.iter().any(|a| a == "--journal-sync");
    if journal_dir.is_none() && checkpoint_every != 0 {
        fail("--checkpoint-every needs --journal <dir>");
    }
    if journal_dir.is_none() && journal_sync {
        fail("--journal-sync needs --journal <dir>");
    }
    let idle_ms: u64 = flag_parse(args, "--idle-timeout", 0);
    // `--auth-token a,b,...`: the daemon-side allowlist.
    let auth_tokens: Vec<u64> = match flag_value(args, "--auth-token") {
        Ok(Some(list)) => {
            list.split(',').map(|t| parse_hex_u64("--auth-token", t)).collect()
        }
        Ok(None) => Vec::new(),
        Err(msg) => fail(&msg),
    };
    let options = ServeOptions {
        idle_timeout: (idle_ms != 0).then(|| Duration::from_millis(idle_ms)),
        auth_tokens,
        reactor: parse_reactor(args, ReactorOptions::default()),
    };
    let mut spec = parse_serve_spec(args);
    // `--secagg i/k`: this daemon serves share i of a k-server tier.
    spec.secagg = match flag_value(args, "--secagg") {
        Ok(Some(v)) => {
            let parse = |spec: &str| -> Option<dap_core::SecaggRole> {
                let (i, k) = spec.split_once('/')?;
                dap_core::SecaggRole::new(k.parse().ok()?, i.parse().ok()?).ok()
            };
            Some(parse(&v).unwrap_or_else(|| {
                fail(&format!("invalid value '{v}' for flag --secagg (expected i/k, i < k, k ≥ 2)"))
            }))
        }
        Ok(None) => None,
        Err(msg) => fail(&msg),
    };
    let digest = spec.state_digest().unwrap_or_else(|msg| fail(&msg));
    let listener = TcpListener::bind(&addr)
        .unwrap_or_else(|e| fail(&format!("cannot bind {addr}: {e}")));
    eprintln!(
        "[dapd listening on {} — mech {}, eps {}, {} users, digest {:#018x}]",
        listener.local_addr().map(|a| a.to_string()).unwrap_or(addr),
        spec.mech.name(),
        spec.eps,
        spec.users,
        digest,
    );
    let served = match &journal_dir {
        Some(dir) => spec.serve_durable_with(
            listener,
            std::path::Path::new(dir),
            checkpoint_every,
            journal_sync,
            options,
        ),
        None => spec.serve_with(listener, options),
    };
    if let Err(msg) = served {
        fail(&msg);
    }
    eprintln!("[dapd stopped]");
}

/// `experiments storm`: the reactor's load harness — a seeded client
/// swarm against an in-process daemon fleet, with throttle-aware
/// retry/reconnect, verified exactly-once against a replayed twin, and
/// measured (reports/sec, p50/p99 ack latency). `--bench-json` runs the
/// legacy baseline and the reactor back to back and writes the
/// comparison file CI gates on.
fn storm_cmd(args: &[String]) {
    check_flags(
        args,
        &[
            "--connections",
            "--reports",
            "--batch",
            "--window",
            "--daemons",
            "--seed",
            "--trials",
            "--bench-json",
        ]
        .iter()
        .chain(&REACTOR_FLAGS)
        .copied()
        .collect::<Vec<_>>(),
        &["--legacy", "--no-journal"],
    );
    let spec = StormSpec {
        connections: flag_parse(args, "--connections", 32),
        reports: flag_parse(args, "--reports", 2000),
        batch: flag_parse(args, "--batch", 16),
        window: flag_parse(args, "--window", 16),
        daemons: flag_parse(args, "--daemons", 1),
        seed: flag_parse(args, "--seed", 42),
        journal: !args.iter().any(|a| a == "--no-journal"),
        reactor: parse_reactor(args, StormSpec::storm_reactor()),
    };
    let bench_json = flag_value(args, "--bench-json").unwrap_or_else(|msg| fail(&msg));

    println!("{}", storm_header(&spec));
    if let Some(path) = bench_json {
        // The comparison: alternate legacy/reactor trials (decorrelating
        // filesystem-journal drift) and report each mode's median-
        // throughput run — single fsync-bound runs swing ±30% on shared
        // CI metal.
        let trials: usize = flag_parse(args, "--trials", 3).max(1);
        let reactor_opts =
            spec.reactor.clone().unwrap_or_else(StormSpec::storm_reactor);
        let mut legacies = Vec::with_capacity(trials);
        let mut reactors = Vec::with_capacity(trials);
        for _ in 0..trials {
            let legacy = run_storm(&StormSpec { reactor: None, ..spec.clone() })
                .unwrap_or_else(|msg| fail(&msg));
            println!("{}", legacy.render());
            let reactor = run_storm(&StormSpec {
                reactor: Some(reactor_opts.clone()),
                ..spec.clone()
            })
            .unwrap_or_else(|msg| fail(&msg));
            println!("{}", reactor.render());
            if !legacy.exact() || !reactor.exact() {
                fail(
                    "storm lost, duplicated or diverged reports \
                     (see the lost/dup lines above)",
                );
            }
            legacies.push(legacy);
            reactors.push(reactor);
        }
        let median = |mut runs: Vec<dap_bench::storm::StormStats>| {
            runs.sort_by(|a, b| {
                a.reports_per_sec.total_cmp(&b.reports_per_sec)
            });
            runs.swap_remove(runs.len() / 2)
        };
        let (legacy, reactor) = (median(legacies), median(reactors));
        println!(
            "storm: speedup {:.2}x (reactor {:.0} vs legacy {:.0} reports/sec, \
             median of {trials})",
            reactor.reports_per_sec / legacy.reports_per_sec,
            reactor.reports_per_sec,
            legacy.reports_per_sec,
        );
        if let Err(e) = write_storm_bench_json(&path, &spec, &reactor, &legacy) {
            fail(&format!("failed to write {path}: {e}"));
        }
        eprintln!("[wrote {path}]");
    } else {
        let stats = run_storm(&spec).unwrap_or_else(|msg| fail(&msg));
        println!("{}", stats.render());
        if !stats.exact() {
            fail("storm lost, duplicated or diverged reports (see the lost/dup line above)");
        }
    }
}

fn parse_schemes(args: &[String]) -> Vec<Scheme> {
    match flag_value(args, "--schemes") {
        Ok(None) => Scheme::ALL.to_vec(),
        Ok(Some(spec)) if spec == "all" => Scheme::ALL.to_vec(),
        Ok(Some(spec)) => spec
            .split(',')
            .map(|label| {
                Scheme::from_label(label)
                    .unwrap_or_else(|| fail(&format!("unknown scheme '{label}'")))
            })
            .collect(),
        Err(msg) => fail(&msg),
    }
}

/// `experiments submit`: the coordinator — streams a simulated population
/// to the daemons (or runs the in-process reference under `--local`) and
/// prints the finalized outputs with their exact bit patterns.
fn submit_cmd(args: &[String]) {
    let valued: Vec<&str> = [
        "--addrs",
        "--dataset",
        "--gamma",
        "--data-seed",
        "--schemes",
        "--secagg",
        "--secagg-seed",
        "--auth-token",
    ]
    .iter()
    .chain(&DEPLOY_FLAGS)
    .chain(&RETRY_FLAGS)
    .copied()
    .collect();
    check_flags(args, &valued, &["--local", "--expect-rejection", "--shutdown", "--pull-only"]);
    let spec = parse_submit_spec(args);
    let schemes = parse_schemes(args);
    let local = args.iter().any(|a| a == "--local");
    let secagg: Option<usize> = match flag_value(args, "--secagg") {
        Ok(Some(v)) => Some(v.parse().unwrap_or_else(|_| {
            fail(&format!("invalid value '{v}' for flag --secagg (expected the share count k)"))
        })),
        Ok(None) => None,
        Err(msg) => fail(&msg),
    };
    if local && secagg.is_some() {
        fail("--secagg needs --addrs: the --local reference is the plaintext in-process run");
    }

    // The header (and everything on stdout) is identical between a served
    // run and the `--local` reference — CI byte-diffs the two.
    println!("{}", submit_header(&spec));
    let outputs = if local {
        spec.run_local(&schemes).unwrap_or_else(|msg| fail(&msg))
    } else {
        let addrs: Vec<String> = match flag_value(args, "--addrs") {
            Ok(Some(list)) => list.split(',').map(str::to_string).collect(),
            Ok(None) => fail("submit needs --addrs <a,b,...> or --local"),
            Err(msg) => fail(&msg),
        };
        let opts = SubmitOptions {
            probe_rejection: args.iter().any(|a| a == "--expect-rejection"),
            shutdown: args.iter().any(|a| a == "--shutdown"),
            pull_only: args.iter().any(|a| a == "--pull-only"),
            retry: parse_retry(args),
            deadlines: parse_deadlines(args, 0),
            secagg,
            secagg_seed: parse_secagg_seed(args),
            auth_token: parse_auth_token(args),
        };
        let outcome = spec.submit(&addrs, &schemes, opts).unwrap_or_else(|msg| fail(&msg));
        for daemon in &outcome.daemons {
            eprintln!("[{}]", daemon.render());
        }
        if let Some(rejection) = outcome.rejection {
            eprintln!("[rejection probe: {rejection}]");
        }
        outcome.outputs
    };
    print!("{}", render_outputs(&schemes, &outputs));
}

/// `experiments chaos`: spawns a journaled daemon fleet behind seeded
/// fault-injection proxies, submits through them — optionally SIGKILLing
/// and restarting every daemon on its journal mid-run — and requires the
/// finalized outputs to be bit-identical to the in-process reference.
/// stdout is byte-identical to `submit --local`; the fault/retry evidence
/// goes to stderr.
fn chaos_cmd(args: &[String]) {
    let valued: Vec<&str> = [
        "--dataset",
        "--gamma",
        "--data-seed",
        "--schemes",
        "--daemons",
        "--chaos-seed",
        "--faults",
        "--secagg-seed",
        "--auth-token",
    ]
    .iter()
    .chain(&DEPLOY_FLAGS)
    .chain(&RETRY_FLAGS)
    .copied()
    .collect();
    check_flags(args, &valued, &["--kill-restart", "--secagg"]);
    let spec = ChaosSpec {
        submit: parse_submit_spec(args),
        daemons: flag_parse(args, "--daemons", 2),
        seed: flag_parse(args, "--chaos-seed", 7),
        faults: flag_parse(args, "--faults", 6),
        kill_restart: args.iter().any(|a| a == "--kill-restart"),
        retry: parse_retry(args),
        // A chaos run must bound its reads: stall faults would otherwise
        // park the coordinator forever, so 0 is not accepted here.
        deadlines: parse_deadlines(args, 500),
        secagg: args.iter().any(|a| a == "--secagg"),
        secagg_seed: parse_secagg_seed(args),
        auth_token: parse_auth_token(args),
    };
    if spec.deadlines.read.is_none() {
        fail("chaos needs a nonzero --timeout-ms (stall faults never send bytes)");
    }
    let schemes = parse_schemes(args);
    println!("{}", submit_header(&spec.submit));
    let report = run_chaos(&spec, &schemes).unwrap_or_else(|msg| fail(&msg));
    for daemon in &report.daemons {
        eprintln!("[{}]", daemon.render());
    }
    for (i, (connections, faults)) in report.proxies.iter().enumerate() {
        eprintln!("[proxy {i}: {connections} connections, {faults} faults injected]");
    }
    eprintln!("[chaos: finalized outputs bit-identical to the clean local reference]");
    print!("{}", render_outputs(&schemes, &report.outputs));
}

/// `experiments dispatch <id> --addrs a,b,...`: runs shard `i/n` of the
/// experiment on daemon `i` over the wire, merges, verifies and renders
/// exactly like a local run.
fn dispatch_cmd(args: &[String]) {
    let opts = match ExpOptions::parse_allowing(args, &["--addrs", "--out"]) {
        Ok(opts) => opts,
        Err(msg) => fail(&msg),
    };
    let id = match args.first() {
        Some(id) if !id.starts_with("--") => id.clone(),
        _ => fail("dispatch needs an experiment id first, e.g. `dispatch fig7 --addrs ...`"),
    };
    let addrs: Vec<String> = match flag_value(args, "--addrs") {
        Ok(Some(list)) => list.split(',').map(str::to_string).collect(),
        Ok(None) => fail("dispatch needs --addrs <a,b,...>"),
        Err(msg) => fail(&msg),
    };
    let out_path = flag_value(args, "--out").unwrap_or_else(|msg| fail(&msg));

    let start = Instant::now();
    let merged = match dap_bench::serve::dispatch(&id, &opts, &addrs) {
        Ok(m) => m,
        Err(msg) => fail(&format!("dispatch failed: {msg}")),
    };
    println!(
        "# options: n = {}, trials = {}, seed = {}, max_d_out = {}\n",
        opts.n, opts.trials, opts.seed, opts.max_d_out
    );
    let map = merged.result_map();
    let ids = dap_bench::serve::experiment_ids(&id).expect("verified by dispatch");
    for e in &ids {
        print!("{}", e.render(&opts, &map));
    }
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, merged.to_json()) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[wrote {path}]");
    }
    eprintln!(
        "[dispatched {} shards over the wire, {} cells in {:.1?}]",
        addrs.len(),
        merged.cells.len(),
        start.elapsed()
    );
}

/// `experiments shutdown --addrs a,b,...`: stops running daemons.
fn shutdown_cmd(args: &[String]) {
    check_flags(args, &["--addrs", "--auth-token"], &[]);
    let addrs: Vec<String> = match flag_value(args, "--addrs") {
        Ok(Some(list)) => list.split(',').map(str::to_string).collect(),
        Ok(None) => fail("shutdown needs --addrs <a,b,...>"),
        Err(msg) => fail(&msg),
    };
    let auth_token = parse_auth_token(args);
    for addr in &addrs {
        let mut client =
            dap_core::net::WireClient::connect_retry(addr, 20, std::time::Duration::from_millis(100))
                .unwrap_or_else(|e| fail(&format!("cannot reach daemon {addr}: {e}")));
        if auth_token.is_some() {
            // An allowlisted daemon authenticates connections on their
            // hello; the digest-mismatch reply (we don't know the
            // deployment here) is irrelevant — the token is what counts.
            client.set_auth(auth_token);
            let _ = client.hello(0);
        }
        client.shutdown().unwrap_or_else(|e| fail(&format!("{addr}: {e}")));
        eprintln!("[stopped {addr}]");
    }
}

/// `--shard i/n` → `(i, n)`.
fn parse_shard(args: &[String]) -> Result<Option<(usize, usize)>, String> {
    let Some(v) = flag_value(args, "--shard")? else {
        return Ok(None);
    };
    let parse = |spec: &str| -> Option<(usize, usize)> {
        let (i, n) = spec.split_once('/')?;
        let (i, n) = (i.parse().ok()?, n.parse().ok()?);
        (n >= 1 && i < n).then_some((i, n))
    };
    parse(&v)
        .map(Some)
        .ok_or_else(|| format!("invalid value '{v}' for flag --shard (expected i/n with i < n)"))
}

/// Value of `flag` in `args`: `Ok(None)` when absent, an error when the
/// flag is present but its value is missing or looks like another flag
/// (the same no-silent-ignore rule as `ExpOptions::parse`).
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
        _ => Err(format!("flag {flag} is missing its value")),
    }
}
