//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p dap-bench --bin experiments -- <id> [flags]
//!
//! ids:    fig4 table1 fig5 fig6 fig7 fig8 fig9 fig10
//!         ablation-weights ablation-split all
//! flags:  --n <users>        population per trial   (default 20000)
//!         --trials <t>       trials per cell        (default 3)
//!         --seed <s>         master seed            (default 42)
//!         --max-dout <d>     EMF bucket cap         (default 128)
//!         --paper-scale      n = 1e6, max-dout = 512
//! ```

use dap_bench::common::ExpOptions;
use dap_bench::{ablations, fig10, fig4, fig5, fig6, fig7, fig8, fig9, table1};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args.first().map(String::as_str).unwrap_or("help");
    let opts = ExpOptions::parse(&args);

    if id == "help" || id == "--help" {
        println!("usage: experiments <id> [--n N] [--trials T] [--seed S] [--max-dout D] [--paper-scale]");
        println!("ids: fig4 table1 fig5 fig6 fig7 fig8 fig9 fig10 ablation-weights ablation-split ablation-mechanism all");
        return;
    }

    println!(
        "# options: n = {}, trials = {}, seed = {}, max_d_out = {}\n",
        opts.n, opts.trials, opts.seed, opts.max_d_out
    );
    let start = Instant::now();
    let mut ran = false;
    let mut run = |name: &str, f: &dyn Fn(&ExpOptions)| {
        if id == name || id == "all" {
            let t = Instant::now();
            f(&opts);
            eprintln!("[{name} done in {:.1?}]", t.elapsed());
            ran = true;
        }
    };

    run("fig4", &fig4::run);
    run("table1", &table1::run);
    run("fig5", &fig5::run);
    run("fig6", &fig6::run);
    run("fig7", &fig7::run);
    run("fig8", &fig8::run);
    run("fig9", &fig9::run);
    run("fig10", &fig10::run);
    run("ablation-weights", &ablations::run_weights);
    run("ablation-split", &ablations::run_split);
    run("ablation-mechanism", &ablations::run_mechanism);

    if !ran {
        eprintln!("unknown experiment id '{id}'; run `experiments help`");
        std::process::exit(2);
    }
    eprintln!("[total {:.1?}]", start.elapsed());
}
