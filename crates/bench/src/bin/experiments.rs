//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p dap-bench --bin experiments -- <id> [flags]
//!
//! ids:    fig4 table1 fig5 fig6 fig7 fig8 fig9 fig10
//!         ablation-weights ablation-split all
//! flags:  --n <users>          population per trial   (default 20000)
//!         --trials <t>         trials per cell        (default 3)
//!         --seed <s>           master seed            (default 42)
//!         --max-dout <d>       EMF bucket cap         (default 128)
//!         --paper-scale        n = 1e6, max-dout = 512
//!         --bench-json <path>  run the experiment --bench-repeats times and
//!                              write median wall-clock JSON (perf tracking)
//!         --bench-repeats <r>  timed repeats for --bench-json (default 3)
//! ```

use dap_bench::common::{write_bench_json, ExpOptions};
use dap_bench::{ablations, fig10, fig4, fig5, fig6, fig7, fig8, fig9, table1};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let id = args.first().map(String::as_str).unwrap_or("help");
    let opts = match ExpOptions::parse(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let bench_json = match flag_value(&args, "--bench-json") {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let bench_repeats: usize = match flag_value(&args, "--bench-repeats") {
        Ok(Some(v)) => match v.parse() {
            Ok(r) if r > 0 => r,
            _ => {
                eprintln!("error: invalid value '{v}' for flag --bench-repeats");
                std::process::exit(2);
            }
        },
        Ok(None) => 3,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    // Timing JSON only makes sense for a single experiment; reject the
    // aggregate id before hours of work, not after.
    if bench_json.is_some() && (id == "all" || id == "help" || id == "--help") {
        eprintln!("error: --bench-json requires a single experiment id (got '{id}')");
        std::process::exit(2);
    }

    if id == "help" || id == "--help" {
        println!("usage: experiments <id> [--n N] [--trials T] [--seed S] [--max-dout D] [--paper-scale] [--bench-json PATH] [--bench-repeats R]");
        println!("ids: fig4 table1 fig5 fig6 fig7 fig8 fig9 fig10 ablation-weights ablation-split ablation-mechanism all");
        return;
    }

    println!(
        "# options: n = {}, trials = {}, seed = {}, max_d_out = {}\n",
        opts.n, opts.trials, opts.seed, opts.max_d_out
    );
    let start = Instant::now();
    let mut ran = false;
    let mut timed_ms: Vec<f64> = Vec::new();
    let mut run = |name: &str, f: &dyn Fn(&ExpOptions)| {
        if id == name || id == "all" {
            let timing = bench_json.is_some() && id == name;
            let repeats = if timing { bench_repeats } else { 1 };
            for rep in 0..repeats {
                let t = Instant::now();
                f(&opts);
                let ms = t.elapsed().as_secs_f64() * 1e3;
                if timing {
                    timed_ms.push(ms);
                    eprintln!("[{name} repeat {} of {repeats}: {ms:.1} ms]", rep + 1);
                } else {
                    eprintln!("[{name} done in {:.1?}]", t.elapsed());
                }
            }
            ran = true;
        }
    };

    run("fig4", &fig4::run);
    run("table1", &table1::run);
    run("fig5", &fig5::run);
    run("fig6", &fig6::run);
    run("fig7", &fig7::run);
    run("fig8", &fig8::run);
    run("fig9", &fig9::run);
    run("fig10", &fig10::run);
    run("ablation-weights", &ablations::run_weights);
    run("ablation-split", &ablations::run_split);
    run("ablation-mechanism", &ablations::run_mechanism);

    if !ran {
        eprintln!("unknown experiment id '{id}'; run `experiments help`");
        std::process::exit(2);
    }
    if let Some(path) = bench_json {
        if let Err(e) = write_bench_json(&path, id, &opts, &timed_ms) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[wrote {path}]");
    }
    eprintln!("[total {:.1?}]", start.elapsed());
}

/// Value of `flag` in `args`: `Ok(None)` when absent, an error when the
/// flag is present but its value is missing or looks like another flag
/// (the same no-silent-ignore rule as `ExpOptions::parse`).
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => Ok(Some(v.clone())),
        _ => Err(format!("flag {flag} is missing its value")),
    }
}
