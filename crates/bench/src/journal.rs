//! Resumable shard runs: a cell-result journal on top of
//! [`dap_core::storage`].
//!
//! `experiments <id> --shard i/n --journal <dir>` appends every finished
//! cell to a write-ahead journal keyed by the cell's coordinate stream
//! digest ([`crate::cell::Cell::stream`]). A re-run over the same
//! directory replays the journal, verifies each record still matches this
//! build's enumeration (same guarantee `experiments merge` gives shard
//! files), and executes **only the missing cells** — so a preempted
//! multi-hour shard resumes where it died instead of starting over, and
//! the final `dap-results/v1` JSON is byte-identical to an uninterrupted
//! run.
//!
//! The journal reuses the exact framing of the session journal (length +
//! FNV digest prefix per record, [`dap_core::storage::Journal`]); only the
//! payloads differ:
//!
//! * record 0 — the run manifest (experiment, options, shard coordinate):
//!   a journal from a different run refuses to resume;
//! * every later record — one cell: `cell <index> <stream> <bits…>` with
//!   the folded values as exact f64 bit patterns ([`codec::f64_to_hex`]).

use crate::cell::Cell;
use crate::common::ExpOptions;
use crate::engine::{run_cells_subset, CellResult};
use crate::results::codec;
use dap_core::storage::{FileBackend, Journal};
use std::path::Path;

/// The manifest payload identifying one shard run. Everything that
/// changes the cell enumeration or the values is in here; a mismatch on
/// resume is an error, not a silent restart.
pub fn manifest(experiment: &str, opts: &ExpOptions, index: usize, count: usize) -> String {
    format!(
        "dap-shard-journal/v1 {} n {} trials {} seed {} max-dout {} shard {}/{}",
        experiment,
        opts.n,
        opts.trials,
        codec::hex_u64(opts.seed),
        opts.max_d_out,
        index,
        count
    )
}

fn encode_cell(result: &CellResult) -> String {
    let mut s = format!("cell {} {}", result.index, codec::hex_u64(result.stream));
    for v in &result.values {
        s.push(' ');
        s.push_str(&codec::f64_to_hex(*v));
    }
    s
}

fn decode_cell(payload: &[u8], at: u64) -> Result<CellResult, String> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| format!("journal record at byte {at} is not UTF-8"))?;
    let mut words = text.split(' ');
    if words.next() != Some("cell") {
        return Err(format!(
            "journal record at byte {at} is not a cell record: '{}'",
            text.chars().take(40).collect::<String>()
        ));
    }
    let index: usize = words
        .next()
        .and_then(|w| w.parse().ok())
        .ok_or_else(|| format!("journal record at byte {at} has a bad cell index"))?;
    let stream = codec::parse_hex_u64(
        words.next().ok_or_else(|| format!("journal record at byte {at} has no stream"))?,
    )
    .map_err(|e| format!("journal record at byte {at}: {e}"))?;
    let values: Vec<f64> = words
        .map(|w| codec::parse_hex_u64(w).map(f64::from_bits))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("journal record at byte {at}: {e}"))?;
    Ok(CellResult { index, stream, values })
}

/// A cell-result journal bound to one shard run.
pub struct ShardJournal {
    journal: Journal<FileBackend>,
    done: Vec<CellResult>,
}

/// The checkpoint payload a damaged shard journal compacts into: the
/// manifest line followed by one encoded cell per line (no cell payload
/// contains a newline).
fn encode_state(manifest: &str, done: &[CellResult]) -> String {
    let mut s = manifest.to_string();
    for r in done {
        s.push('\n');
        s.push_str(&encode_cell(r));
    }
    s
}

fn check_manifest(dir: &Path, found: &str, wanted: &str) -> Result<(), String> {
    if found != wanted {
        return Err(format!(
            "shard journal at {} belongs to a different run:\n  journal:  {found}\n  \
             this run: {wanted}",
            dir.display()
        ));
    }
    Ok(())
}

impl ShardJournal {
    /// Opens (or creates) the journal at `dir` for the run `manifest`
    /// describes, replaying previously completed cells. A journal written
    /// by a different run (different manifest) is rejected; a torn final
    /// record (crash mid-append — the cell was never marked done) is
    /// dropped and the valid state folded into a checkpoint so appends
    /// can resume.
    pub fn open(dir: &Path, manifest: &str) -> Result<ShardJournal, String> {
        let backend = FileBackend::open(dir).map_err(|e| e.to_string())?;
        let (mut journal, state) = Journal::open(backend).map_err(|e| e.to_string())?;
        if let Some(corruption) = &state.corruption {
            return Err(format!("shard journal at {}: {corruption}", dir.display()));
        }
        let mut done = Vec::new();
        let mut manifest_seen = false;
        if let Some(payload) = &state.checkpoint {
            let text = std::str::from_utf8(payload)
                .map_err(|_| format!("shard checkpoint at {} is not UTF-8", dir.display()))?;
            let mut lines = text.lines();
            let first = lines
                .next()
                .ok_or_else(|| format!("shard checkpoint at {} is empty", dir.display()))?;
            check_manifest(dir, first, manifest)?;
            manifest_seen = true;
            for line in lines {
                done.push(decode_cell(line.as_bytes(), 0)?);
            }
        }
        for (at, payload) in &state.replay {
            if !manifest_seen {
                check_manifest(dir, std::str::from_utf8(payload).unwrap_or("<binary>"), manifest)?;
                manifest_seen = true;
                continue;
            }
            done.push(decode_cell(payload, *at)?);
        }
        if state.damaged() {
            journal.compact(encode_state(manifest, &done).as_bytes()).map_err(|e| e.to_string())?;
        } else if !manifest_seen {
            journal.append(manifest.as_bytes()).map_err(|e| e.to_string())?;
        }
        Ok(ShardJournal { journal, done })
    }

    /// Cells already completed by a previous run of this shard.
    pub fn done(&self) -> &[CellResult] {
        &self.done
    }

    /// Appends one finished cell. The record is durable (flushed) before
    /// this returns — a crash immediately after never re-runs the cell.
    pub fn record(&mut self, result: &CellResult) -> Result<(), String> {
        self.journal.append(encode_cell(result).as_bytes()).map_err(|e| e.to_string())
    }
}

/// Runs the cells at `indices` with journaled resumability: previously
/// completed cells are taken from the journal at `dir` (after verifying
/// their streams against this build's enumeration), the rest run in
/// parallel chunks sized to the thread pool — each chunk fans its
/// `(cell, rep)` tasks across every core exactly like the plain path,
/// and every finished chunk is journaled before the next starts, so a
/// preemption re-runs at most one chunk instead of the whole tail. The
/// returned results are in `indices` order — bit-identical to a plain
/// [`run_cells_subset`] over the same indices (chunking cannot change a
/// value: every cell derives its RNG streams from its coordinate alone).
pub fn run_cells_journaled(
    dir: &Path,
    manifest_text: &str,
    opts: &ExpOptions,
    cells: &[Cell],
    indices: &[usize],
) -> Result<(Vec<CellResult>, usize), String> {
    let mut journal = ShardJournal::open(dir, manifest_text)?;

    // Verify and index the journaled results. A stream mismatch means the
    // directory holds results for different coordinates (changed options
    // or an incompatible build) — refuse, as merge would.
    let mut by_index: std::collections::HashMap<usize, CellResult> = Default::default();
    for r in journal.done() {
        let cell = cells.get(r.index).ok_or_else(|| {
            format!("journaled cell index {} out of range ({} cells)", r.index, cells.len())
        })?;
        if cell.stream() != r.stream {
            return Err(format!(
                "journaled cell {} has stream {}, this build enumerates {}",
                r.index,
                codec::hex_u64(r.stream),
                codec::hex_u64(cell.stream())
            ));
        }
        by_index.insert(r.index, r.clone());
    }
    let resumed = indices.iter().filter(|i| by_index.contains_key(i)).count();

    // Chunks of one cell per thread keep the cross-cell parallelism of
    // the plain path while bounding the crash re-work window to a single
    // chunk (each cell is journaled, in order, as its chunk completes).
    let missing: Vec<usize> =
        indices.iter().copied().filter(|i| !by_index.contains_key(i)).collect();
    let chunk = dap_core::parallel::effective_threads().max(1);
    for batch in missing.chunks(chunk) {
        for r in run_cells_subset(opts, cells, batch) {
            journal.record(&r)?;
            by_index.insert(r.index, r);
        }
    }

    let results = indices
        .iter()
        .map(|i| by_index.get(i).expect("every index ran or resumed").clone())
        .collect();
    Ok((results, resumed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::ExperimentId;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("dap-shard-journal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_opts() -> ExpOptions {
        ExpOptions { n: 200, trials: 1, seed: 9, max_d_out: 8 }
    }

    #[test]
    fn cell_records_round_trip_exactly() {
        let r = CellResult {
            index: 7,
            stream: 0xdead_beef_1234_5678,
            values: vec![0.1 + 0.2, f64::INFINITY, -0.0],
        };
        let back = decode_cell(encode_cell(&r).as_bytes(), 0).expect("round trip");
        assert_eq!(back.index, r.index);
        assert_eq!(back.stream, r.stream);
        let bits: Vec<u64> = back.values.iter().map(|v| v.to_bits()).collect();
        let want: Vec<u64> = r.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, want);
        assert!(decode_cell(b"not a cell", 5).unwrap_err().contains("byte 5"));
    }

    #[test]
    fn journaled_run_resumes_and_matches_a_plain_run() {
        let dir = tmpdir("resume");
        let opts = small_opts();
        let cells = ExperimentId::Fig7.cells(&opts);
        let indices: Vec<usize> = (0..cells.len()).collect();
        let man = manifest("fig7", &opts, 0, 1);
        let reference = run_cells_subset(&opts, &cells, &indices);

        // First pass: only run a prefix (simulate preemption by asking for
        // fewer indices).
        let half = &indices[..indices.len() / 2];
        let (first, resumed) =
            run_cells_journaled(&dir, &man, &opts, &cells, half).expect("first pass");
        assert_eq!(resumed, 0);
        assert_eq!(first.len(), half.len());

        // Second pass over the full list resumes the journaled prefix and
        // is bit-identical to the uninterrupted reference.
        let (full, resumed) =
            run_cells_journaled(&dir, &man, &opts, &cells, &indices).expect("second pass");
        assert_eq!(resumed, half.len());
        assert_eq!(full.len(), reference.len());
        for (a, b) in full.iter().zip(&reference) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.stream, b.stream);
            let abits: Vec<u64> = a.values.iter().map(|v| v.to_bits()).collect();
            let bbits: Vec<u64> = b.values.iter().map(|v| v.to_bits()).collect();
            assert_eq!(abits, bbits, "cell {} drifted across resume", a.index);
        }

        // A different run must not be able to consume this journal.
        let other = manifest("fig7", &ExpOptions { seed: 10, ..opts }, 0, 1);
        let err = run_cells_journaled(&dir, &other, &opts, &cells, &indices).unwrap_err();
        assert!(err.contains("different run"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
