//! The shared experiment engine: executes any [`Cell`] list.
//!
//! Execution is flattened to `(cell, rep)` tasks and fanned out over
//! [`dap_core::parallel_map`] — results are bit-identical for any thread
//! count because every task derives its RNG stream from the cell
//! coordinate and rep index alone, and the per-cell fold runs in fixed
//! order. Populations come from the process-wide
//! [`dap_datasets::PopulationCache`], whose generation streams are keyed by
//! the *sampling* coordinate `(dataset, domain, n, γ, seed, trial)` — so a
//! population is sampled once no matter how many cells (across
//! experiments) consume it, and a shard that runs only some cells
//! regenerates byte-identical populations. Together these two properties
//! make sharded runs exact: `--shard i/n` + `merge` reproduces a
//! single-process run bit for bit.

use crate::cell::{AttackSpec, Cell, CellKind, Fold, MechKind};
use crate::common::{trial_rng, ExpOptions};
use crate::report_cache::{ReportCache, ReportCoord, ReportMech};
use dap_core::baseline::{BaselineConfig, BaselineProtocol};
use dap_core::categorical::{
    categorical_dap, ostrich_frequencies, simulate_reports, CategoricalDapConfig,
};
use dap_core::ima::emf_based_ima_mean;
use dap_core::sw::{SwDap, SwDapConfig};
use dap_core::{parallel_map, Dap, DapConfig, Population, Scheme};
use dap_datasets::cache::{Domain, SampledPopulation};
use dap_datasets::{covid_frequencies, sample_covid, Dataset, PopulationCache, COVID_GROUPS};
use dap_defenses::{KMeansDefense, MeanDefense, Ostrich, Trimming};
use dap_emf::{cemf_star, cemf_star_threshold, emf, emf_star, probe_side, ByzantineFeatures, EmfConfig};
use dap_estimation::stats::{mean, wasserstein_1};
use dap_estimation::{ems, Grid, PoisonRegion};
use dap_ldp::{Duchi, Epsilon, NumericMechanism, PiecewiseMechanism, SquareWave};
use std::collections::HashMap;
use std::sync::Arc;

/// The structured outcome of one cell: its position in the enumeration,
/// its coordinate-derived stream id, and one folded value per variant.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Index into the enumerated cell list this run executed against.
    pub index: usize,
    /// [`Cell::stream`] of that cell (the coordinate digest).
    pub stream: u64,
    /// Folded values, in [`Cell::variants`] order.
    pub values: Vec<f64>,
}

/// Executes every cell. Equivalent to
/// [`run_cells_subset`] over `0..cells.len()`.
pub fn run_cells(opts: &ExpOptions, cells: &[Cell]) -> Vec<CellResult> {
    let indices: Vec<usize> = (0..cells.len()).collect();
    run_cells_subset(opts, cells, &indices)
}

/// Executes the cells at `indices` (a shard), fanning `(cell, rep)` tasks
/// out over [`parallel_map`]. Returns one [`CellResult`] per index, in
/// `indices` order, bit-identical to the same cells' results in a full
/// run.
pub fn run_cells_subset(opts: &ExpOptions, cells: &[Cell], indices: &[usize]) -> Vec<CellResult> {
    assert_distinct_streams(cells);
    let tasks: Vec<(usize, usize)> = indices
        .iter()
        .flat_map(|&i| (0..cells[i].reps(opts)).map(move |t| (i, t)))
        .collect();
    let reps = parallel_map(tasks, |(i, t)| run_rep(opts, &cells[i], t));

    let mut results = Vec::with_capacity(indices.len());
    let mut cursor = 0usize;
    for &i in indices {
        let cell = &cells[i];
        let n_reps = cell.reps(opts);
        let outs = &reps[cursor..cursor + n_reps];
        cursor += n_reps;
        results.push(CellResult { index: i, stream: cell.stream(), values: fold(cell, outs) });
    }
    results
}

/// One snapshot of both process-wide cache counter sets — the population
/// cache (sampled values) and the report cache (perturbed reports) — so
/// tests and the `experiments all` footer read the same numbers through
/// one call.
pub fn cache_stats() -> (dap_datasets::CacheStats, crate::report_cache::ReportCacheStats) {
    (PopulationCache::global().stats(), ReportCache::global().stats())
}

/// Any coordinate collision (two cells hashing to one stream would share
/// randomness *and* collide in result maps) is a spec bug — fail loudly.
fn assert_distinct_streams(cells: &[Cell]) {
    let mut seen: HashMap<u64, usize> = HashMap::with_capacity(cells.len());
    for (i, cell) in cells.iter().enumerate() {
        if let Some(&first) = seen.get(&cell.stream()) {
            panic!(
                "cell stream collision between #{first} and #{i} ({:?} vs {:?})",
                cells[first], cell
            );
        }
        seen.insert(cell.stream(), i);
    }
}

/// Values of one rep: per-variant estimates plus the rep's ground truth
/// (unused by folds that don't score against a truth).
struct RepOut {
    estimates: Vec<f64>,
    truth: f64,
}

fn fold(cell: &Cell, reps: &[RepOut]) -> Vec<f64> {
    let variants = reps[0].estimates.len();
    for rep in reps {
        assert_eq!(rep.estimates.len(), variants, "variant count drifted across reps");
    }
    let mean_of = |reps: &[RepOut]| -> Vec<f64> {
        let mut acc = vec![0.0; variants];
        for rep in reps {
            for (a, e) in acc.iter_mut().zip(&rep.estimates) {
                *a += e;
            }
        }
        acc.iter_mut().for_each(|a| *a /= reps.len() as f64);
        acc
    };
    match cell.kind.fold() {
        Fold::Once => reps[0].estimates.clone(),
        Fold::Mean => mean_of(reps),
        Fold::AbsErrOfMean(target) => {
            mean_of(reps).into_iter().map(|m| (m - target).abs()).collect()
        }
        Fold::Mse => {
            let mut acc = vec![0.0; variants];
            for rep in reps {
                for (a, e) in acc.iter_mut().zip(&rep.estimates) {
                    *a += (e - rep.truth) * (e - rep.truth);
                }
            }
            acc.iter_mut().for_each(|a| *a /= reps.len() as f64);
            acc
        }
    }
}

/// Fetches the (cached) population for a sampling coordinate.
fn population(
    opts: &ExpOptions,
    dataset: Dataset,
    domain: Domain,
    gamma: f64,
    trial: usize,
) -> Arc<SampledPopulation> {
    PopulationCache::global().population(dataset, domain, opts.n, gamma, opts.seed, trial as u64)
}

/// The matching report-cache coordinate for a sampling coordinate.
fn report_coord(
    opts: &ExpOptions,
    dataset: Dataset,
    domain: Domain,
    gamma: f64,
    trial: usize,
) -> ReportCoord {
    ReportCoord { dataset, domain, n: opts.n, gamma, seed: opts.seed, trial: trial as u64 }
}

/// The report-cache mechanism tag for a cell's [`MechKind`].
fn report_mech(mechanism: MechKind) -> ReportMech {
    match mechanism {
        MechKind::Pm => ReportMech::Pm,
        MechKind::Duchi => ReportMech::Duchi,
    }
}

/// Owned [`Population`] for the few protocol APIs without a borrowed-slice
/// entry point (the §IV baseline).
fn to_population(sp: &SampledPopulation) -> Population {
    Population { honest: sp.honest.clone(), byzantine: sp.byzantine }
}

/// A full-budget single-batch collection over cached *reports*: the honest
/// half comes from the process-wide [`ReportCache`] (perturbed once per
/// `(population, mechanism, ε)` coordinate) and the coalition's half from
/// the same cache under the attack-extended key — both from key-derived
/// streams, so the whole batch is a pure function of its coordinate.
fn pm_batch(coord: &ReportCoord, eps: f64, spec: AttackSpec) -> Vec<f64> {
    mech_batch(coord, eps, MechKind::Pm, spec)
}

/// [`pm_batch`] under a chosen mechanism — cells that carry a
/// [`MechKind`] must batch with *that* mechanism, or their defense rows
/// would silently compare across mechanisms.
fn mech_batch(coord: &ReportCoord, eps: f64, mechanism: MechKind, spec: AttackSpec) -> Vec<f64> {
    batch_of(coord, eps, report_mech(mechanism), spec)
}

/// SW analogue of [`pm_batch`].
fn sw_batch(coord: &ReportCoord, eps: f64, spec: AttackSpec) -> Vec<f64> {
    batch_of(coord, eps, ReportMech::Sw, spec)
}

fn batch_of(coord: &ReportCoord, eps: f64, mech: ReportMech, spec: AttackSpec) -> Vec<f64> {
    let cache = ReportCache::global();
    let honest = cache.flat_batch(coord, mech, eps);
    let poison = cache.poison_flat(coord, mech, eps, spec);
    let mut reports = Vec::with_capacity(honest.len() + poison.len());
    reports.extend_from_slice(&honest);
    reports.extend_from_slice(&poison);
    reports
}

/// Mean squared error of estimated COVID-19 frequencies against the truth.
fn covid_freq_mse(est: &[f64]) -> f64 {
    let truth = covid_frequencies();
    est.iter().zip(truth.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
        / COVID_GROUPS as f64
}

/// Executes rep `t` of one cell. This is the execution layer the figure
/// drivers used to inline; every simulation shape lives here exactly once.
fn run_rep(opts: &ExpOptions, cell: &Cell, t: usize) -> RepOut {
    let mut rng = trial_rng(opts, cell.stream(), t);
    match &cell.kind {
        CellKind::DatasetHist { dataset, buckets } => {
            let sp = population(opts, *dataset, Domain::Signed, 0.0, t);
            let mut estimates = vec![sp.truth];
            estimates.extend(Grid::new(-1.0, 1.0, *buckets).frequencies(&sp.honest));
            RepOut { estimates, truth: sp.truth }
        }

        CellKind::ProbeVariance { dataset, range, gamma, eps } => {
            let coord = report_coord(opts, *dataset, Domain::Signed, *gamma, t);
            let reports = pm_batch(&coord, *eps, AttackSpec::Poi(*range));
            let mech = PiecewiseMechanism::new(Epsilon::of(*eps));
            let cfg = EmfConfig::capped(reports.len(), *eps, opts.max_d_out);
            let (olo, ohi) = mech.output_range();
            let counts = Grid::new(olo, ohi, cfg.d_out).counts(&reports);
            let probe = probe_side(&mech, &counts, cfg.d_in, 0.0, &cfg.em);
            RepOut { estimates: vec![probe.var_left, probe.var_right], truth: 0.0 }
        }

        CellKind::GammaHat { dataset, gamma, eps, attack, .. } => {
            let coord = report_coord(opts, *dataset, Domain::Signed, *gamma, t);
            let reports = pm_batch(&coord, *eps, *attack);
            let cfg = EmfConfig::capped(reports.len(), *eps, opts.max_d_out);
            let mech = PiecewiseMechanism::new(Epsilon::of(*eps));
            let features = ByzantineFeatures::probe(&mech, &reports, 0.0, &cfg);
            RepOut { estimates: vec![features.gamma], truth: 0.0 }
        }

        CellKind::PmMse { dataset, gamma, eps, attack, schemes, defenses, weighting, mechanism } => {
            let sp = population(opts, *dataset, Domain::Signed, *gamma, t);
            let coord = report_coord(opts, *dataset, Domain::Signed, *gamma, t);
            // `scheme` in the config is ignored by the prepared replay.
            let cfg = DapConfig {
                max_d_out: opts.max_d_out,
                weighting: *weighting,
                ..DapConfig::paper_default(*eps, Scheme::Emf)
            };
            let scheme_list = schemes.schemes();
            // Stages 1–2 (plan + honest perturbation) and the coalition's
            // batches both come from the report cache; the replay itself
            // consumes no randomness.
            let rc = ReportCache::global();
            let prepared = rc.prepared(&coord, report_mech(*mechanism), *eps, cfg.eps0);
            let poison =
                rc.poison_grouped(&coord, report_mech(*mechanism), *eps, cfg.eps0, *attack);
            let outs = match mechanism {
                MechKind::Pm => Dap::new(cfg, PiecewiseMechanism::new)
                    .expect("valid config")
                    .run_schemes_prepared_with(&prepared, &poison, &scheme_list)
                    .expect("valid run"),
                MechKind::Duchi => Dap::new(cfg, Duchi::new)
                    .expect("valid config")
                    .run_schemes_prepared_with(&prepared, &poison, &scheme_list)
                    .expect("valid run"),
            };
            let mut estimates: Vec<f64> = outs.into_iter().map(|o| o.mean).collect();
            if *defenses {
                // The defenses see a plain single-batch collection at full
                // budget over the same honest values (common random
                // numbers across all rows of the cell) under the cell's
                // mechanism.
                let reports = mech_batch(&coord, *eps, *mechanism, *attack);
                estimates.push(Ostrich.estimate_mean(&reports, &mut rng));
                estimates.push(
                    Trimming::paper_default(dap_attack::Side::Right)
                        .estimate_mean(&reports, &mut rng),
                );
            }
            RepOut { estimates, truth: sp.truth }
        }

        CellKind::RawMean { dataset, gamma, eps, attack, mechanism } => {
            let sp = population(opts, *dataset, Domain::Signed, *gamma, t);
            let coord = report_coord(opts, *dataset, Domain::Signed, *gamma, t);
            let reports = mech_batch(&coord, *eps, *mechanism, *attack);
            RepOut { estimates: vec![mean(&reports)], truth: sp.truth }
        }

        CellKind::KMeans { dataset, gamma, eps, attack, beta, subsets } => {
            let sp = population(opts, *dataset, Domain::Signed, *gamma, t);
            let coord = report_coord(opts, *dataset, Domain::Signed, *gamma, t);
            let reports = pm_batch(&coord, *eps, *attack);
            let defense = KMeansDefense::new(*beta, *subsets);
            RepOut { estimates: vec![defense.estimate_mean(&reports, &mut rng)], truth: sp.truth }
        }

        CellKind::ImaEmf { dataset, gamma, eps, g } => {
            let sp = population(opts, *dataset, Domain::Signed, *gamma, t);
            let coord = report_coord(opts, *dataset, Domain::Signed, *gamma, t);
            let reports = pm_batch(&coord, *eps, AttackSpec::Ima { g: *g });
            let cfg = EmfConfig::capped(reports.len(), *eps, opts.max_d_out);
            let mech = PiecewiseMechanism::new(Epsilon::of(*eps));
            let out = emf_based_ima_mean(&mech, &reports, &cfg);
            RepOut { estimates: vec![out.mean], truth: sp.truth }
        }

        CellKind::SwWasserstein { dataset, gamma, eps } => {
            let sp = population(opts, *dataset, Domain::Unit, *gamma, t);
            let coord = report_coord(opts, *dataset, Domain::Unit, *gamma, t);
            let reports = sw_batch(&coord, *eps, AttackSpec::SwTop);
            let mech = SquareWave::new(Epsilon::of(*eps));
            let (cfg, counts, matrix) = crate::common::emf_setup(
                &mech,
                &reports,
                *eps,
                opts.max_d_out,
                &PoisonRegion::RightOf(1.0),
            );
            let truth_hist = Grid::new(0.0, 1.0, cfg.d_in).frequencies(&sp.honest);
            let spacing = 1.0 / cfg.d_in as f64;
            let normalized = |hist: &[f64]| -> Vec<f64> {
                let total: f64 = hist.iter().sum();
                hist.iter().map(|&v| if total > 0.0 { v / total } else { v }).collect()
            };

            let base = emf(&matrix, &counts, &cfg.em);
            let g_hat = base.poison_mass();
            let star = emf_star(&matrix, &counts, g_hat, &cfg.em);
            let thr = cemf_star_threshold(g_hat, matrix.poison_buckets().len());
            let cemf = cemf_star(&matrix, &counts, g_hat, thr, &base, &cfg.em);
            // Same histogram, poison-free matrix: only the matrix differs
            // for the Ostrich/EMS row.
            let ems_matrix = dap_estimation::cached_for_numeric(
                &mech,
                cfg.d_in,
                cfg.d_out,
                &PoisonRegion::None,
            );
            let ostrich = ems::solve(&ems_matrix, &counts, &cfg.em).histogram;

            let estimates = vec![
                wasserstein_1(&normalized(&base.normal), &truth_hist, spacing),
                wasserstein_1(&normalized(&star.normal), &truth_hist, spacing),
                wasserstein_1(&normalized(&cemf.normal), &truth_hist, spacing),
                wasserstein_1(&ostrich, &truth_hist, spacing),
            ];
            RepOut { estimates, truth: 0.0 }
        }

        CellKind::SwGammaErr { dataset, gamma, eps } => {
            let coord = report_coord(opts, *dataset, Domain::Unit, *gamma, t);
            let reports = sw_batch(&coord, *eps, AttackSpec::SwTop);
            let mech = SquareWave::new(Epsilon::of(*eps));
            let (cfg, counts, matrix) = crate::common::emf_setup(
                &mech,
                &reports,
                *eps,
                opts.max_d_out,
                &PoisonRegion::RightOf(1.0),
            );
            let err = (emf(&matrix, &counts, &cfg.em).poison_mass() - gamma).abs();
            RepOut { estimates: vec![err], truth: 0.0 }
        }

        CellKind::SwMse { dataset, gamma, eps } => {
            let sp = population(opts, *dataset, Domain::Unit, *gamma, t);
            let coord = report_coord(opts, *dataset, Domain::Unit, *gamma, t);
            let cfg = SwDapConfig {
                max_d_out: opts.max_d_out,
                ..SwDapConfig::paper_default(*eps, Scheme::Emf)
            };
            let rc = ReportCache::global();
            let prepared = rc.prepared(&coord, ReportMech::Sw, *eps, cfg.eps0);
            let poison =
                rc.poison_grouped(&coord, ReportMech::Sw, *eps, cfg.eps0, AttackSpec::SwTop);
            let outs = SwDap::new(cfg)
                .expect("valid config")
                .run_schemes_prepared_with(&prepared, &poison, &Scheme::ALL)
                .expect("valid run");
            RepOut { estimates: outs.into_iter().map(|o| o.mean).collect(), truth: sp.truth }
        }

        CellKind::SwDefense { dataset, gamma, eps } => {
            let sp = population(opts, *dataset, Domain::Unit, *gamma, t);
            let coord = report_coord(opts, *dataset, Domain::Unit, *gamma, t);
            let reports = sw_batch(&coord, *eps, AttackSpec::SwTop);
            // The SW attack poisons above the input max, so the canonical
            // right-side 50% trim applies unchanged.
            let estimates = vec![
                Ostrich.estimate_mean(&reports, &mut rng),
                Trimming::paper_default(dap_attack::Side::Right).estimate_mean(&reports, &mut rng),
            ];
            RepOut { estimates, truth: sp.truth }
        }

        CellKind::CatDap { scheme, gamma, eps, poison } => {
            let m = (opts.n as f64 * gamma).round() as usize;
            let honest = sample_covid(opts.n - m, &mut rng);
            let cfg = CategoricalDapConfig::paper_default(*eps, *scheme);
            let out = categorical_dap(&honest, m, poison.groups(), COVID_GROUPS, &cfg, &mut rng);
            RepOut { estimates: vec![covid_freq_mse(&out.frequencies)], truth: 0.0 }
        }

        CellKind::CatOstrich { gamma, eps, poison } => {
            let m = (opts.n as f64 * gamma).round() as usize;
            let honest = sample_covid(opts.n - m, &mut rng);
            let mech = dap_ldp::KRandomizedResponse::new(Epsilon::of(*eps), COVID_GROUPS)
                .expect("k >= 2");
            let counts = simulate_reports(&mech, &honest, m, poison.groups(), &mut rng);
            RepOut { estimates: vec![covid_freq_mse(&ostrich_frequencies(&mech, &counts))], truth: 0.0 }
        }

        CellKind::BaselineSplit { dataset, gamma, eps, alpha, probing } => {
            let sp = population(opts, *dataset, Domain::Signed, *gamma, t);
            let pop = to_population(&sp);
            let cfg = BaselineConfig {
                alpha: *alpha,
                max_d_out: opts.max_d_out,
                ..BaselineConfig::with_eps(*eps)
            };
            let proto =
                BaselineProtocol::new(cfg, PiecewiseMechanism::new).expect("valid config");
            let attack = AttackSpec::Poi(crate::common::PoiRange::TopHalf).build();
            let out = if *probing {
                proto.run_with_evading_attacker(&pop, attack.as_ref(), 0.0, &mut rng)
            } else {
                proto.run(&pop, attack.as_ref(), &mut rng)
            }
            .expect("valid run");
            RepOut { estimates: vec![out.mean], truth: sp.truth }
        }
    }
}

/// Cell values keyed by the coordinate stream id — what renderers consume,
/// built either from a live run or from (merged) JSON result sets.
pub struct ResultMap {
    map: HashMap<u64, Vec<f64>>,
}

impl ResultMap {
    /// From a live engine run.
    pub fn from_results(results: &[CellResult]) -> ResultMap {
        ResultMap { map: results.iter().map(|r| (r.stream, r.values.clone())).collect() }
    }

    /// From raw `(stream, values)` pairs (the JSON path).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, Vec<f64>)>) -> ResultMap {
        ResultMap { map: pairs.into_iter().collect() }
    }

    /// The values of one cell; panics with the cell coordinate if absent
    /// (which means spec and results went out of sync — a bug, not an
    /// input error).
    pub fn get(&self, cell: &Cell) -> &[f64] {
        self.map
            .get(&cell.stream())
            .unwrap_or_else(|| panic!("no result for cell {cell:?}"))
    }

    /// Number of cells with results.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}
