//! Machine-readable result sets: the stable JSON schema behind
//! `experiments … --out results.json` and the shard/merge workflow.
//!
//! Schema (`"dap-results/v1"`):
//!
//! ```json
//! {
//!   "schema": "dap-results/v1",
//!   "experiment": "fig7",
//!   "options": { "n": 20000, "trials": 3, "seed": 42, "max_d_out": 128 },
//!   "shard": { "index": 0, "count": 2, "cells_total": 16 },
//!   "cells": [
//!     {
//!       "index": 0,
//!       "stream": "0x9fb3…",
//!       "experiment": "fig7",
//!       "panel": "a",
//!       "coords": { "kind": "pm-mse", "dataset": "Taxi", "eps": "1", … },
//!       "variants": ["DAP_EMF", "DAP_EMF*", "DAP_CEMF*", "Ostrich", "Trimming"],
//!       "values": [0.00012, …],
//!       "bits": ["0x3f2b…", …]
//!     }
//!   ]
//! }
//! ```
//!
//! `shard` is absent for unsharded runs. `values` are human-readable
//! decimals; `bits` are the authoritative IEEE-754 bit patterns — readers
//! reconstruct every f64 exactly from them, which is what lets the golden
//! tests pin *sharded run + merge == unsharded run* bit for bit.
//!
//! The workspace has no serde (offline container), so this module carries
//! its own emitter and a minimal strict JSON parser. The exact-number
//! codec (hex f64 bit patterns, shortest-roundtrip decimals, string
//! quoting) is **shared** with the `dap-wire/v1` network protocol — both
//! re-export [`dap_core::codec`], so the two serialization layers cannot
//! drift.

use crate::cell::Cell;
use crate::common::ExpOptions;
use crate::engine::{CellResult, ResultMap};
pub use dap_core::codec;
use dap_core::codec::{decimal, parse_hex_u64, quote, MAX_EXACT_JSON_INT};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier embedded in every file.
pub const SCHEMA: &str = "dap-results/v1";

/// Shard coordinate of a partial run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// Which partition (`0 ≤ index < count`).
    pub index: usize,
    /// Total partitions.
    pub count: usize,
    /// Cell count of the *full* enumeration the partition was taken from.
    pub cells_total: usize,
}

/// One cell's serialized record.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Index in the full enumeration.
    pub index: usize,
    /// Coordinate stream id ([`Cell::stream`]).
    pub stream: u64,
    /// Experiment the cell belongs to (differs per record under `all`).
    pub experiment: String,
    /// Panel id within the experiment.
    pub panel: String,
    /// Flat typed coordinates.
    pub coords: Vec<(String, String)>,
    /// Value labels, in order.
    pub variants: Vec<String>,
    /// Values (exact — reconstructed from bit patterns when parsed).
    pub values: Vec<f64>,
}

/// A (possibly partial) experiment run: options + typed cell results.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// The experiment selection this set was enumerated from (`"fig7"`,
    /// `"all"`, …).
    pub experiment: String,
    /// The options the cells ran under.
    pub options: ExpOptions,
    /// Shard coordinate, absent for full runs.
    pub shard: Option<ShardInfo>,
    /// Records ordered by `index`.
    pub cells: Vec<CellRecord>,
}

impl ResultSet {
    /// Assembles a set from an engine run over (a subset of) `cells`.
    pub fn build(
        experiment: &str,
        options: &ExpOptions,
        shard: Option<ShardInfo>,
        cells: &[Cell],
        results: &[CellResult],
    ) -> ResultSet {
        let records = results
            .iter()
            .map(|r| {
                let cell = &cells[r.index];
                debug_assert_eq!(cell.stream(), r.stream);
                CellRecord {
                    index: r.index,
                    stream: r.stream,
                    experiment: cell.experiment.name().to_string(),
                    panel: cell.panel.clone(),
                    coords: cell
                        .kind
                        .coords()
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect(),
                    variants: cell.variants(),
                    values: r.values.clone(),
                }
            })
            .collect();
        ResultSet {
            experiment: experiment.to_string(),
            options: *options,
            shard,
            cells: records,
        }
    }

    /// The renderer-facing view.
    pub fn result_map(&self) -> ResultMap {
        ResultMap::from_pairs(self.cells.iter().map(|c| (c.stream, c.values.clone())))
    }

    /// Checks this set against a re-enumerated cell list: every record's
    /// stream must match the cell at its index (same coordinates ⇒ same
    /// digest), and — for full sets — every cell must be present.
    pub fn verify_against(&self, cells: &[Cell]) -> Result<(), String> {
        if let Some(shard) = self.shard {
            if shard.cells_total != cells.len() {
                return Err(format!(
                    "cell count mismatch: file enumerates {} cells, this build enumerates {}",
                    shard.cells_total,
                    cells.len()
                ));
            }
        }
        for rec in &self.cells {
            let cell = cells.get(rec.index).ok_or_else(|| {
                format!("record index {} out of range ({} cells)", rec.index, cells.len())
            })?;
            if cell.stream() != rec.stream {
                return Err(format!(
                    "coordinate digest mismatch at index {}: file stream {}, enumerated {} \
                     (different options or an incompatible build)",
                    rec.index,
                    codec::hex_u64(rec.stream),
                    codec::hex_u64(cell.stream())
                ));
            }
        }
        if self.shard.is_none() && self.cells.len() != cells.len() {
            return Err(format!(
                "full result set has {} of {} cells",
                self.cells.len(),
                cells.len()
            ));
        }
        Ok(())
    }

    /// Merges shard sets into one full set. Verifies option/coordinate
    /// compatibility: same experiment, identical options, same declared
    /// partition count and total, no overlapping and no missing cells.
    pub fn merge(shards: Vec<ResultSet>) -> Result<ResultSet, String> {
        let first = shards.first().ok_or("no shards to merge")?;
        let experiment = first.experiment.clone();
        let options = first.options;
        let reference = first
            .shard
            .ok_or("shard 0 has no shard info (already a full result set?)")?;

        let mut by_index: BTreeMap<usize, CellRecord> = BTreeMap::new();
        for (i, shard) in shards.iter().enumerate() {
            if shard.experiment != experiment {
                return Err(format!(
                    "experiment mismatch: shard 0 is '{}', shard {} is '{}'",
                    experiment, i, shard.experiment
                ));
            }
            for (field, a, b) in [
                ("n", options.n as u64, shard.options.n as u64),
                ("trials", options.trials as u64, shard.options.trials as u64),
                ("seed", options.seed, shard.options.seed),
                ("max_d_out", options.max_d_out as u64, shard.options.max_d_out as u64),
            ] {
                if a != b {
                    return Err(format!("options mismatch on {field}: shard 0 ran {a}, shard {i} ran {b}"));
                }
            }
            let info = shard
                .shard
                .ok_or_else(|| format!("shard {i} has no shard info"))?;
            if info.count != reference.count || info.cells_total != reference.cells_total {
                return Err(format!(
                    "partition mismatch: shard 0 declares {}-way over {} cells, shard {i} \
                     declares {}-way over {} cells",
                    reference.count, reference.cells_total, info.count, info.cells_total
                ));
            }
            for rec in &shard.cells {
                if rec.index >= reference.cells_total {
                    return Err(format!(
                        "record index {} out of range ({} cells)",
                        rec.index, reference.cells_total
                    ));
                }
                if let Some(dup) = by_index.insert(rec.index, rec.clone()) {
                    return Err(format!(
                        "overlapping shards: cell index {} appears twice (streams {:#x}, {:#x})",
                        rec.index, dup.stream, rec.stream
                    ));
                }
            }
        }
        if by_index.len() != reference.cells_total {
            let missing: Vec<usize> = (0..reference.cells_total)
                .filter(|i| !by_index.contains_key(i))
                .take(8)
                .collect();
            return Err(format!(
                "incomplete merge: {} of {} cells present (first missing indices: {missing:?})",
                by_index.len(),
                reference.cells_total
            ));
        }
        Ok(ResultSet {
            experiment,
            options,
            shard: None,
            cells: by_index.into_values().collect(),
        })
    }

    /// Serializes to the schema above.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": {},", quote(SCHEMA));
        let _ = writeln!(s, "  \"experiment\": {},", quote(&self.experiment));
        // A JSON number survives the f64 parse only up to 2⁵³; larger
        // seeds are written as hex strings so the round trip stays exact.
        let seed = if self.options.seed <= MAX_EXACT_JSON_INT {
            self.options.seed.to_string()
        } else {
            format!("\"{:#x}\"", self.options.seed)
        };
        let _ = writeln!(
            s,
            "  \"options\": {{ \"n\": {}, \"trials\": {}, \"seed\": {seed}, \"max_d_out\": {} }},",
            self.options.n, self.options.trials, self.options.max_d_out
        );
        if let Some(shard) = self.shard {
            let _ = writeln!(
                s,
                "  \"shard\": {{ \"index\": {}, \"count\": {}, \"cells_total\": {} }},",
                shard.index, shard.count, shard.cells_total
            );
        }
        let _ = writeln!(s, "  \"cells\": [");
        for (i, rec) in self.cells.iter().enumerate() {
            let coords: Vec<String> =
                rec.coords.iter().map(|(k, v)| format!("{}: {}", quote(k), quote(v))).collect();
            let variants: Vec<String> = rec.variants.iter().map(|v| quote(v)).collect();
            let values: Vec<String> = rec.values.iter().map(|v| decimal(*v)).collect();
            let bits: Vec<String> =
                rec.values.iter().map(|v| format!("\"{}\"", codec::f64_to_hex(*v))).collect();
            let _ = write!(
                s,
                "    {{ \"index\": {}, \"stream\": \"{}\", \"experiment\": {}, \
                 \"panel\": {},\n      \"coords\": {{ {} }},\n      \"variants\": [{}],\n      \
                 \"values\": [{}],\n      \"bits\": [{}] }}",
                rec.index,
                codec::hex_u64(rec.stream),
                quote(&rec.experiment),
                quote(&rec.panel),
                coords.join(", "),
                variants.join(", "),
                values.join(", "),
                bits.join(", ")
            );
            let _ = writeln!(s, "{}", if i + 1 < self.cells.len() { "," } else { "" });
        }
        let _ = writeln!(s, "  ]");
        let _ = writeln!(s, "}}");
        s
    }

    /// Parses a file produced by [`ResultSet::to_json`] (exact f64s are
    /// reconstructed from the `bits` arrays).
    pub fn from_json(text: &str) -> Result<ResultSet, String> {
        let root = json::parse(text)?;
        let obj = root.as_object("top level")?;
        let schema = obj.str_field("schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema '{schema}' (expected '{SCHEMA}')"));
        }
        let experiment = obj.str_field("experiment")?.to_string();
        let o = obj.field("options")?.as_object("options")?;
        let seed = match o.field("seed")? {
            json::Value::Number(v)
                if *v >= 0.0 && v.fract() == 0.0 && *v <= MAX_EXACT_JSON_INT as f64 =>
            {
                *v as u64
            }
            json::Value::String(s) => parse_hex_u64(s)?,
            other => {
                return Err(format!(
                    "options.seed: expected an exact integer or 0x-hex string, got {other:?}"
                ))
            }
        };
        let options = ExpOptions {
            n: o.usize_field("n")?,
            trials: o.usize_field("trials")?,
            seed,
            max_d_out: o.usize_field("max_d_out")?,
        };
        let shard = match obj.opt_field("shard") {
            None => None,
            Some(v) => {
                let s = v.as_object("shard")?;
                Some(ShardInfo {
                    index: s.usize_field("index")?,
                    count: s.usize_field("count")?,
                    cells_total: s.usize_field("cells_total")?,
                })
            }
        };
        let mut cells = Vec::new();
        for item in obj.field("cells")?.as_array("cells")? {
            let c = item.as_object("cell record")?;
            let bits = c.field("bits")?.as_array("bits")?;
            let values: Vec<f64> = bits
                .iter()
                .map(|b| {
                    let s = b.as_str("bits entry")?;
                    parse_hex_u64(s).map(f64::from_bits)
                })
                .collect::<Result<_, _>>()?;
            let coords = c
                .field("coords")?
                .as_object("coords")?
                .0
                .iter()
                .map(|(k, v)| Ok((k.clone(), v.as_str("coord value")?.to_string())))
                .collect::<Result<Vec<_>, String>>()?;
            let variants = c
                .field("variants")?
                .as_array("variants")?
                .iter()
                .map(|v| Ok(v.as_str("variant")?.to_string()))
                .collect::<Result<Vec<_>, String>>()?;
            cells.push(CellRecord {
                index: c.usize_field("index")?,
                stream: parse_hex_u64(c.str_field("stream")?)?,
                experiment: c.str_field("experiment")?.to_string(),
                panel: c.str_field("panel")?.to_string(),
                coords,
                variants,
                values,
            });
        }
        Ok(ResultSet { experiment, options, shard, cells })
    }
}

/// A deliberately small, strict JSON reader — just enough for the schema
/// this module emits (and hand-edited variants of it).
pub mod json {
    /// Parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// Key-ordered object.
        Object(Object),
        Array(Vec<Value>),
        String(String),
        Number(f64),
        Bool(bool),
        Null,
    }

    /// An object as an ordered `(key, value)` list (duplicate keys
    /// rejected at parse time).
    #[derive(Debug, Clone, PartialEq, Default)]
    pub struct Object(pub Vec<(String, Value)>);

    impl Object {
        /// The value at `key`, if present.
        pub fn opt_field(&self, key: &str) -> Option<&Value> {
            self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }

        /// The value at `key`, or an error naming it.
        pub fn field(&self, key: &str) -> Result<&Value, String> {
            self.opt_field(key).ok_or_else(|| format!("missing field '{key}'"))
        }

        /// A string field.
        pub fn str_field(&self, key: &str) -> Result<&str, String> {
            self.field(key)?.as_str(key)
        }

        /// A non-negative integer field.
        pub fn usize_field(&self, key: &str) -> Result<usize, String> {
            let v = self.field(key)?.as_number(key)?;
            if v < 0.0 || v.fract() != 0.0 || v > usize::MAX as f64 {
                return Err(format!("field '{key}' is not a usize: {v}"));
            }
            Ok(v as usize)
        }

    }

    impl Value {
        /// This value as an object.
        pub fn as_object(&self, what: &str) -> Result<&Object, String> {
            match self {
                Value::Object(o) => Ok(o),
                other => Err(format!("{what}: expected object, got {other:?}")),
            }
        }

        /// This value as an array.
        pub fn as_array(&self, what: &str) -> Result<&[Value], String> {
            match self {
                Value::Array(a) => Ok(a),
                other => Err(format!("{what}: expected array, got {other:?}")),
            }
        }

        /// This value as a string.
        pub fn as_str(&self, what: &str) -> Result<&str, String> {
            match self {
                Value::String(s) => Ok(s),
                other => Err(format!("{what}: expected string, got {other:?}")),
            }
        }

        /// This value as a number.
        pub fn as_number(&self, what: &str) -> Result<f64, String> {
            match self {
                Value::Number(n) => Ok(*n),
                other => Err(format!("{what}: expected number, got {other:?}")),
            }
        }
    }

    /// Parses one JSON document (trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing data at byte {}", p.i));
        }
        Ok(v)
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            }
        }

        fn peek(&mut self) -> Result<u8, String> {
            self.skip_ws();
            self.b.get(self.i).copied().ok_or_else(|| "unexpected end of input".to_string())
        }

        fn expect(&mut self, c: u8) -> Result<(), String> {
            if self.peek()? != c {
                return Err(format!(
                    "expected '{}' at byte {}, found '{}'",
                    c as char, self.i, self.b[self.i] as char
                ));
            }
            self.i += 1;
            Ok(())
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek()? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::String(self.string()?)),
                b't' => self.literal("true", Value::Bool(true)),
                b'f' => self.literal("false", Value::Bool(false)),
                b'n' => self.literal("null", Value::Null),
                _ => self.number(),
            }
        }

        fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
            if self.b[self.i..].starts_with(word.as_bytes()) {
                self.i += word.len();
                Ok(value)
            } else {
                Err(format!("bad literal at byte {}", self.i))
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields: Vec<(String, Value)> = Vec::new();
            if self.peek()? == b'}' {
                self.i += 1;
                return Ok(Value::Object(Object(fields)));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                if fields.iter().any(|(k, _)| *k == key) {
                    return Err(format!("duplicate key '{key}'"));
                }
                self.expect(b':')?;
                let value = self.value()?;
                fields.push((key, value));
                match self.peek()? {
                    b',' => self.i += 1,
                    b'}' => {
                        self.i += 1;
                        return Ok(Value::Object(Object(fields)));
                    }
                    c => return Err(format!("expected ',' or '}}', found '{}'", c as char)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            if self.peek()? == b']' {
                self.i += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(self.value()?);
                match self.peek()? {
                    b',' => self.i += 1,
                    b']' => {
                        self.i += 1;
                        return Ok(Value::Array(items));
                    }
                    c => return Err(format!("expected ',' or ']', found '{}'", c as char)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let c = *self
                    .b
                    .get(self.i)
                    .ok_or_else(|| "unterminated string".to_string())?;
                self.i += 1;
                match c {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let esc = *self
                            .b
                            .get(self.i)
                            .ok_or_else(|| "unterminated escape".to_string())?;
                        self.i += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .b
                                    .get(self.i..self.i + 4)
                                    .ok_or_else(|| "truncated \\u escape".to_string())?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex)
                                        .map_err(|_| "bad \\u escape".to_string())?,
                                    16,
                                )
                                .map_err(|_| "bad \\u escape".to_string())?;
                                self.i += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| "surrogate \\u escape".to_string())?,
                                );
                            }
                            c => return Err(format!("unknown escape '\\{}'", c as char)),
                        }
                    }
                    // Multi-byte UTF-8: copy the sequence through.
                    c if c >= 0x80 => {
                        let start = self.i - 1;
                        while self.i < self.b.len() && self.b[self.i] & 0xc0 == 0x80 {
                            self.i += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.b[start..self.i])
                                .map_err(|_| "invalid UTF-8 in string".to_string())?,
                        );
                    }
                    c => out.push(c as char),
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            self.skip_ws();
            let start = self.i;
            while self.i < self.b.len()
                && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                self.i += 1;
            }
            let text = std::str::from_utf8(&self.b[start..self.i])
                .map_err(|_| "invalid number".to_string())?;
            text.parse::<f64>()
                .map(Value::Number)
                .map_err(|_| format!("invalid number '{text}' at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set(shard: Option<ShardInfo>) -> ResultSet {
        ResultSet {
            experiment: "fig7".into(),
            options: ExpOptions::default(),
            shard,
            cells: vec![
                CellRecord {
                    index: 0,
                    stream: 0xdead_beef_0042_1111,
                    experiment: "fig7".into(),
                    panel: "a".into(),
                    coords: vec![("kind".into(), "pm-mse".into()), ("eps".into(), "1".into())],
                    variants: vec!["DAP_EMF".into(), "Ostrich".into()],
                    values: vec![1.25e-4, f64::consts_test()],
                },
                CellRecord {
                    index: 1,
                    stream: 0x0123_4567_89ab_cdef,
                    experiment: "fig7".into(),
                    panel: "b".into(),
                    coords: vec![("kind".into(), "pm-mse".into())],
                    variants: vec!["DAP_EMF".into()],
                    values: vec![f64::INFINITY],
                },
            ],
        }
    }

    trait TestConst {
        fn consts_test() -> f64;
    }
    impl TestConst for f64 {
        fn consts_test() -> f64 {
            // An awkward value that decimal printing could mangle; bits
            // round-trip it exactly.
            (0.1f64 + 0.2).powi(7)
        }
    }

    #[test]
    fn json_round_trips_bit_for_bit() {
        for shard in [None, Some(ShardInfo { index: 1, count: 3, cells_total: 2 })] {
            let set = sample_set(shard);
            let parsed = ResultSet::from_json(&set.to_json()).expect("own output parses");
            assert_eq!(parsed.experiment, set.experiment);
            assert_eq!(parsed.options, set.options);
            assert_eq!(parsed.shard, set.shard);
            assert_eq!(parsed.cells.len(), set.cells.len());
            for (a, b) in parsed.cells.iter().zip(&set.cells) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.stream, b.stream);
                assert_eq!(a.coords, b.coords);
                assert_eq!(a.variants, b.variants);
                let abits: Vec<u64> = a.values.iter().map(|v| v.to_bits()).collect();
                let bbits: Vec<u64> = b.values.iter().map(|v| v.to_bits()).collect();
                assert_eq!(abits, bbits);
            }
        }
    }

    #[test]
    fn seeds_beyond_f64_precision_round_trip_exactly() {
        // 2⁵³ + 1 is the first integer a JSON number silently corrupts;
        // such seeds are emitted as hex strings instead.
        let mut set = sample_set(None);
        set.options.seed = (1u64 << 53) + 1;
        let text = set.to_json();
        assert!(text.contains("\"seed\": \"0x20000000000001\""), "{text}");
        let parsed = ResultSet::from_json(&text).expect("hex seed parses");
        assert_eq!(parsed.options.seed, set.options.seed);

        // Ordinary seeds stay human-readable numbers.
        let set = sample_set(None);
        let text = set.to_json();
        assert!(text.contains("\"seed\": 42"), "{text}");
        assert_eq!(ResultSet::from_json(&text).expect("parses").options.seed, 42);
    }

    #[test]
    fn merge_rejects_incompatible_shards() {
        let mut a = sample_set(Some(ShardInfo { index: 0, count: 2, cells_total: 2 }));
        a.cells.truncate(1);
        let mut b = sample_set(Some(ShardInfo { index: 1, count: 2, cells_total: 2 }));
        b.cells.remove(0);

        // Happy path first.
        let merged = ResultSet::merge(vec![a.clone(), b.clone()]).expect("compatible shards");
        assert_eq!(merged.cells.len(), 2);
        assert!(merged.shard.is_none());

        // Mismatched seed.
        let mut bad = b.clone();
        bad.options.seed = 43;
        let err = ResultSet::merge(vec![a.clone(), bad]).expect_err("seed mismatch");
        assert!(err.contains("seed"), "{err}");

        // Overlapping shards.
        let err = ResultSet::merge(vec![a.clone(), a.clone()]).expect_err("overlap");
        assert!(err.contains("missing") || err.contains("twice"), "{err}");

        // Missing cells.
        let err = ResultSet::merge(vec![a.clone()]).expect_err("incomplete");
        assert!(err.contains("incomplete"), "{err}");

        // Partition disagreement.
        let mut bad = b.clone();
        bad.shard = Some(ShardInfo { index: 1, count: 3, cells_total: 2 });
        let err = ResultSet::merge(vec![a, bad]).expect_err("partition mismatch");
        assert!(err.contains("partition"), "{err}");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("{} extra").is_err());
        assert!(json::parse(r#"{"a": 1, "a": 2}"#).is_err(), "duplicate keys");
        assert!(json::parse(r#"{"a": [1, 2,]}"#).is_err(), "trailing comma");
        let v = json::parse(r#"{"x": [1.5, "two\n", true, null], "y": {}}"#).expect("valid");
        let o = v.as_object("top").unwrap();
        assert_eq!(o.field("x").unwrap().as_array("x").unwrap().len(), 4);
    }
}
