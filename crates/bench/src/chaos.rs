//! `experiments chaos`: a self-contained fault-injection drill for the
//! `dap-wire/v1` serving stack.
//!
//! The drill spawns real journaled daemon *processes* (re-executing the
//! current binary's `serve` subcommand), interposes a deterministic
//! [`ChaosProxy`] in front of each, and drives a full coordinator submit
//! through the proxies — optionally SIGKILLing and restarting each daemon
//! mid-run. The acceptance check is the protocol's exactness claim: the
//! finalized outputs must be **bit-identical** to [`SubmitSpec::run_local`]
//! no matter which connects were dropped, which batches stalled, which
//! acks were lost to a reset, or which daemons died — anything else is a
//! typed, named failure, never silent divergence.
//!
//! Why this holds: every report chunk is precomputed before any I/O (the
//! RNG stream is spent once), chunks travel as sequenced batches a
//! journaled daemon dedups on replay, and a daemon that exhausts the retry
//! budget has its groups re-streamed in full to a survivor while its own
//! part is discarded — so the merged state always holds every report
//! exactly once, in the same per-group order as the local reference.

use crate::serve::{DaemonSummary, ServeSpec, SubmitOptions, SubmitSpec};
use dap_core::net::{Deadlines, RetryPolicy, WireClient};
use dap_core::{ChaosProxy, ChaosSchedule, DapOutput, Scheme, SecaggRole};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::Duration;

/// One chaos drill: the deployment to submit, how many daemons to spawn,
/// and the fault program to run them through.
#[derive(Debug, Clone)]
pub struct ChaosSpec {
    /// The coordinator run (deployment + population) under test.
    pub submit: SubmitSpec,
    /// Daemon processes to spawn (each gets its own journal and proxy).
    pub daemons: usize,
    /// Seed of the per-proxy fault schedules (proxy `i` uses `seed + i`).
    pub seed: u64,
    /// Length of each proxy's fault schedule; connections past it are
    /// clean, which is what guarantees the run converges.
    pub faults: usize,
    /// SIGKILL each daemon once mid-submit and restart it on its journal.
    pub kill_restart: bool,
    /// Retry policy for the coordinator (the budget must outlast the
    /// schedule for the exactness assertion to be reachable).
    pub retry: RetryPolicy,
    /// Socket deadlines — chaos runs must bound reads, or a stalled
    /// connection parks the coordinator forever.
    pub deadlines: Deadlines,
    /// Run the fleet as the secret-shared tier: daemon `i` serves share
    /// `i` of `daemons`, the coordinator deals masked share batches, and
    /// the bit-identity assertion runs against the same plaintext local
    /// reference — proving the masked path changes nothing but trust.
    pub secagg: bool,
    /// Mask seed of the dealer's splitter (secagg drills only).
    pub secagg_seed: u64,
    /// Auth token: daemons start with it as their allowlist and the
    /// coordinator presents it on every hello — drilling the
    /// authenticated path under faults.
    pub auth_token: Option<u64>,
}

/// What a chaos drill observed (the outputs are already verified
/// bit-identical to the local reference before this is returned).
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Finalized outputs, in scheme order — bit-identical to
    /// [`SubmitSpec::run_local`].
    pub outputs: Vec<DapOutput>,
    /// Per-daemon retry/failover summary from the coordinator.
    pub daemons: Vec<DaemonSummary>,
    /// Per-proxy `(connections accepted, faults injected)`.
    pub proxies: Vec<(usize, usize)>,
}

/// A spawned daemon process and the address it announced.
struct DaemonProc {
    child: Child,
    addr: String,
}

impl DaemonProc {
    /// Re-executes the current binary as `serve --journal <dir> --addr
    /// 127.0.0.1:0 ...`, forwards its stderr with a `[daemon i]` prefix,
    /// and returns once the `[dapd listening on ...]` line names the port.
    fn spawn(
        serve: &ServeSpec,
        dir: &Path,
        index: usize,
        auth_token: Option<u64>,
    ) -> Result<DaemonProc, String> {
        let exe = std::env::current_exe()
            .map_err(|e| format!("cannot locate the experiments binary: {e}"))?;
        let mut args: Vec<String> = [
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--journal",
            &dir.display().to_string(),
            "--mech",
            serve.mech.name(),
            "--eps",
            &serve.eps.to_string(),
            "--eps0",
            &serve.eps0.to_string(),
            "--users",
            &serve.users.to_string(),
            "--plan-seed",
            &serve.seed.to_string(),
            "--max-dout",
            &serve.max_d_out.to_string(),
        ]
        .map(String::from)
        .to_vec();
        if let Some(role) = serve.secagg {
            args.push("--secagg".into());
            args.push(format!("{}/{}", role.index, role.k));
        }
        if let Some(token) = auth_token {
            args.push("--auth-token".into());
            args.push(format!("{token:#x}"));
        }
        let mut child = Command::new(&exe)
            .args(&args)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| format!("cannot spawn daemon {index}: {e}"))?;
        let mut reader = BufReader::new(child.stderr.take().expect("piped stderr"));
        let mut line = String::new();
        let addr = loop {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| format!("daemon {index} stderr: {e}"))?;
            if n == 0 {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!(
                    "daemon {index} exited before announcing its address \
                     (is the current binary the experiments driver?)"
                ));
            }
            eprintln!("[daemon {index}] {}", line.trim_end());
            if let Some(rest) = line.trim_start().strip_prefix("[dapd listening on ") {
                match rest.split_whitespace().next() {
                    Some(addr) if !addr.is_empty() => break addr.to_string(),
                    _ => {
                        let _ = child.kill();
                        return Err(format!("daemon {index} announced a blank address"));
                    }
                }
            }
        };
        // Keep draining so the daemon never blocks on a full stderr pipe
        // (recovery summaries and the stop line land here too).
        std::thread::spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => eprintln!("[daemon {index}] {}", line.trim_end()),
                }
            }
        });
        Ok(DaemonProc { child, addr })
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs one chaos drill end to end. Returns the verified report, or a
/// typed, named error — a divergence from the local reference is reported
/// with both renderings, never swallowed.
pub fn run_chaos(spec: &ChaosSpec, schemes: &[Scheme]) -> Result<ChaosReport, String> {
    if spec.daemons == 0 {
        return Err("chaos needs at least one daemon".into());
    }
    if spec.secagg && spec.daemons < 2 {
        return Err("a secagg drill needs at least 2 daemons (one per share)".into());
    }
    let reference = spec.submit.run_local(schemes)?;
    // Daemon `i` of a secagg drill serves share `i`; plaintext drills run
    // the identical spec on every daemon.
    let daemon_spec = |i: usize| ServeSpec {
        secagg: spec
            .secagg
            .then_some(SecaggRole { k: spec.daemons, index: i }),
        ..spec.submit.serve
    };

    let base: PathBuf =
        std::env::temp_dir().join(format!("dap-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Spawn the fleet: daemon i journals to its own directory and is only
    // reachable through proxy i's fault schedule.
    let mut procs = Vec::with_capacity(spec.daemons);
    let mut proxies = Vec::with_capacity(spec.daemons);
    for i in 0..spec.daemons {
        let dir = base.join(format!("daemon-{i}"));
        let proc = DaemonProc::spawn(&daemon_spec(i), &dir, i, spec.auth_token)?;
        let schedule = ChaosSchedule::seeded(spec.seed.wrapping_add(i as u64), spec.faults);
        let proxy = ChaosProxy::start(&proc.addr, schedule)
            .map_err(|e| format!("cannot start proxy {i}: {e}"))?;
        eprintln!(
            "[chaos: daemon {i} at {} behind proxy {} ({} scheduled faults)]",
            proc.addr,
            proxy.addr(),
            spec.faults
        );
        procs.push(proc);
        proxies.push(proxy);
    }
    let proxy_addrs: Vec<String> = proxies.iter().map(|p| p.addr()).collect();
    let procs = Mutex::new(procs);

    // Submit through the proxies while watchdog threads (optionally)
    // SIGKILL and restart each daemon on its journal — a real process
    // death, nothing in daemon memory survives it.
    let opts = SubmitOptions {
        retry: spec.retry,
        deadlines: spec.deadlines,
        secagg: spec.secagg.then_some(spec.daemons),
        secagg_seed: spec.secagg_seed,
        auth_token: spec.auth_token,
        ..SubmitOptions::default()
    };
    let outcome = std::thread::scope(|scope| {
        let mut watchdogs = Vec::new();
        if spec.kill_restart {
            for i in 0..spec.daemons {
                let procs = &procs;
                let proxies = &proxies;
                let serve = daemon_spec(i);
                let auth_token = spec.auth_token;
                let dir = base.join(format!("daemon-{i}"));
                watchdogs.push(scope.spawn(move || {
                    std::thread::sleep(Duration::from_millis(200 + 350 * i as u64));
                    {
                        let mut procs = lock(procs);
                        let _ = procs[i].child.kill();
                        let _ = procs[i].child.wait();
                    }
                    eprintln!("[chaos: daemon {i} SIGKILLed; restarting on its journal]");
                    match DaemonProc::spawn(&serve, &dir, i, auth_token) {
                        Ok(fresh) => {
                            proxies[i].set_upstream(&fresh.addr);
                            eprintln!("[chaos: daemon {i} restarted at {}]", fresh.addr);
                            lock(procs)[i] = fresh;
                        }
                        Err(e) => eprintln!("[chaos: daemon {i} failed to restart: {e}]"),
                    }
                }));
            }
        }
        let outcome = spec.submit.submit(&proxy_addrs, schemes, opts);
        for w in watchdogs {
            let _ = w.join();
        }
        outcome
    });

    // Tear the fleet down before judging the outcome, so a failed drill
    // leaves no stray daemons behind.
    let proxy_stats: Vec<(usize, usize)> =
        proxies.iter().map(|p| (p.connections(), p.faults_injected())).collect();
    let digest = spec.submit.serve.state_digest().unwrap_or(0);
    for (i, proc) in lock(&procs).iter_mut().enumerate() {
        let stopped = WireClient::connect_retry(&proc.addr, 5, Duration::from_millis(50))
            .ok()
            .and_then(|mut c| {
                // An authenticated hello first: shutdown is refused on an
                // unauthenticated connection when an allowlist is set.
                c.set_auth(spec.auth_token);
                let _ = c.hello(digest);
                c.shutdown().ok()
            })
            .is_some();
        if !stopped {
            let _ = proc.child.kill();
        }
        let _ = proc.child.wait();
        if !stopped {
            eprintln!("[chaos: daemon {i} did not answer shutdown; killed]");
        }
    }
    for proxy in &mut proxies {
        proxy.stop();
    }
    let _ = std::fs::remove_dir_all(&base);

    let outcome = outcome?;
    let faulted = crate::serve::render_outputs(schemes, &outcome.outputs);
    let clean = crate::serve::render_outputs(schemes, &reference);
    if faulted != clean {
        return Err(format!(
            "CHAOS DIVERGENCE: the faulted run finalized differently from the \
             clean local reference.\n--- faulted ---\n{faulted}--- clean ---\n{clean}"
        ));
    }
    Ok(ChaosReport {
        outputs: outcome.outputs,
        daemons: outcome.daemons,
        proxies: proxy_stats,
    })
}
