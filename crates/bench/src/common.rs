//! Shared experiment infrastructure: options, poison-range specs, report
//! simulation, and trial loops.

use dap_attack::{Anchor, Attack, UniformAttack};
use dap_core::{Population, Scheme};
use dap_datasets::Dataset;
use dap_estimation::rng::derive;
use dap_estimation::stats::mean;
use dap_ldp::{Epsilon, NumericMechanism, PiecewiseMechanism};
use rand::RngCore;

/// Global experiment options parsed from the command line.
#[derive(Debug, Clone, Copy)]
pub struct ExpOptions {
    /// Total population size N per trial.
    pub n: usize,
    /// Independent trials per configuration (MSE averages over these).
    pub trials: usize,
    /// Master seed; every (experiment, config, trial) derives its own
    /// stream, so results are reproducible and order-independent.
    pub seed: u64,
    /// Cap on the EMF output-bucket count.
    pub max_d_out: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions { n: 20_000, trials: 3, seed: 42, max_d_out: 128 }
    }
}

impl ExpOptions {
    /// Parses `--n`, `--trials`, `--seed`, `--max-dout`, `--paper-scale`
    /// from an argument list, ignoring unknown flags.
    pub fn parse(args: &[String]) -> Self {
        let mut opts = ExpOptions::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut grab = |target: &mut usize| {
                if let Some(v) = it.next() {
                    if let Ok(parsed) = v.parse::<usize>() {
                        *target = parsed;
                    }
                }
            };
            match arg.as_str() {
                "--n" => grab(&mut opts.n),
                "--trials" => grab(&mut opts.trials),
                "--max-dout" => grab(&mut opts.max_d_out),
                "--seed" => {
                    if let Some(v) = it.next() {
                        if let Ok(parsed) = v.parse::<u64>() {
                            opts.seed = parsed;
                        }
                    }
                }
                "--paper-scale" => {
                    opts.n = 1_000_000;
                    opts.max_d_out = 512;
                }
                _ => {}
            }
        }
        opts
    }
}

/// The paper's four poison ranges over `[O', C]` (right side, `O' = 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoiRange {
    /// `Poi[3C/4, C]`.
    TopQuarter,
    /// `Poi[C/2, C]`.
    TopHalf,
    /// `Poi[O, C/2]`.
    LowerHalf,
    /// `Poi[O, C]`.
    Full,
}

impl PoiRange {
    /// All four, in Fig. 6's order.
    pub const ALL: [PoiRange; 4] =
        [PoiRange::TopQuarter, PoiRange::TopHalf, PoiRange::LowerHalf, PoiRange::Full];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            PoiRange::TopQuarter => "[3C/4,C]",
            PoiRange::TopHalf => "[C/2,C]",
            PoiRange::LowerHalf => "[O,C/2]",
            PoiRange::Full => "[O,C]",
        }
    }

    /// Fractions of `C` for the range ends.
    pub fn fractions(self) -> (f64, f64) {
        match self {
            PoiRange::TopQuarter => (0.75, 1.0),
            PoiRange::TopHalf => (0.5, 1.0),
            PoiRange::LowerHalf => (0.0, 0.5),
            PoiRange::Full => (0.0, 1.0),
        }
    }

    /// The uniform attack over this range (mechanism-relative).
    pub fn attack(self) -> UniformAttack {
        let (a, b) = self.fractions();
        // `Abs(0.0)` for the O-anchored lower ends keeps the range valid
        // for every group budget.
        if a == 0.0 {
            UniformAttack::new(Anchor::Abs(0.0), Anchor::OfUpper(b))
        } else {
            UniformAttack::of_upper(a, b)
        }
    }
}

/// Simulates a single-batch collection at budget `eps`: honest users perturb
/// once with PM, the coalition attacks. Returns `(reports, honest_mean)`.
pub fn simulate_batch(
    dataset: Dataset,
    n: usize,
    gamma: f64,
    eps: f64,
    attack: &dyn Attack,
    rng: &mut dyn RngCore,
) -> (Vec<f64>, f64) {
    let m = (n as f64 * gamma).round() as usize;
    let honest = dataset.generate_signed(n - m, rng);
    let truth = mean(&honest);
    let mech = PiecewiseMechanism::new(Epsilon::of(eps));
    let mut reports: Vec<f64> = honest.iter().map(|&v| mech.perturb(v, rng)).collect();
    reports.extend(attack.reports(m, &mech, rng));
    (reports, truth)
}

/// Builds a population for protocol-level experiments. Returns
/// `(population, honest_mean)`.
pub fn build_population(
    dataset: Dataset,
    n: usize,
    gamma: f64,
    rng: &mut dyn RngCore,
) -> (Population, f64) {
    let m = (n as f64 * gamma).round() as usize;
    let honest = dataset.generate_signed(n - m, rng);
    let truth = mean(&honest);
    (Population { honest, byzantine: m }, truth)
}

/// Runs `trials` evaluations of `f` with derived RNG streams and returns the
/// MSE of the produced estimates against the per-trial truth.
pub fn mse_over_trials<F>(opts: &ExpOptions, stream: u64, mut f: F) -> f64
where
    F: FnMut(&mut dyn RngCore) -> (f64, f64), // (estimate, truth)
{
    let mut se = 0.0;
    for t in 0..opts.trials {
        let mut rng = derive(opts.seed, stream.wrapping_mul(1_000_003).wrapping_add(t as u64));
        let (est, truth) = f(&mut rng);
        se += (est - truth) * (est - truth);
    }
    se / opts.trials as f64
}

/// The paper's scheme labels next to baselines, for table headers.
pub fn scheme_columns() -> Vec<String> {
    let mut cols: Vec<String> = Scheme::ALL.iter().map(|s| s.label().to_string()).collect();
    cols.push("Ostrich".into());
    cols.push("Trimming".into());
    cols
}

/// Formats an MSE in the paper's scientific style.
pub fn sci(v: f64) -> String {
    format!("{v:9.2e}")
}

/// A mechanism-agnostic stable stream id from experiment coordinates.
pub fn stream_id(parts: &[usize]) -> u64 {
    parts
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |acc, &p| {
            (acc ^ p as u64).wrapping_mul(0x1000_0000_01b3)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::rng::seeded;

    #[test]
    fn parse_reads_flags_and_ignores_junk() {
        let args: Vec<String> =
            ["--n", "5000", "--bogus", "--trials", "7", "--seed", "9", "--max-dout", "32"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let opts = ExpOptions::parse(&args);
        assert_eq!(opts.n, 5000);
        assert_eq!(opts.trials, 7);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.max_d_out, 32);
    }

    #[test]
    fn paper_scale_flag() {
        let args: Vec<String> = ["--paper-scale"].iter().map(|s| s.to_string()).collect();
        let opts = ExpOptions::parse(&args);
        assert_eq!(opts.n, 1_000_000);
    }

    #[test]
    fn poi_ranges_resolve_inside_domain() {
        let mech = PiecewiseMechanism::with_epsilon(1.0).unwrap();
        let mut rng = seeded(1);
        for range in PoiRange::ALL {
            let reports = range.attack().reports(100, &mech, &mut rng);
            let (lo_f, hi_f) = range.fractions();
            let (lo, hi) = (lo_f * mech.c(), hi_f * mech.c());
            assert!(
                reports.iter().all(|&v| v >= lo - 1e-9 && v <= hi + 1e-9),
                "{}",
                range.label()
            );
        }
    }

    #[test]
    fn simulate_batch_report_count() {
        let mut rng = seeded(2);
        let attack = PoiRange::TopHalf.attack();
        let (reports, truth) = simulate_batch(Dataset::Beta25, 1000, 0.25, 1.0, &attack, &mut rng);
        assert_eq!(reports.len(), 1000);
        assert!((-1.0..=1.0).contains(&truth));
    }

    #[test]
    fn mse_over_trials_is_deterministic() {
        let opts = ExpOptions { trials: 3, ..ExpOptions::default() };
        let f = |rng: &mut dyn RngCore| {
            use rand::Rng;
            (rng.gen::<f64>(), 0.5)
        };
        let a = mse_over_trials(&opts, 17, f);
        let b = mse_over_trials(&opts, 17, f);
        assert_eq!(a, b);
        let c = mse_over_trials(&opts, 18, f);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_ids_differ() {
        assert_ne!(stream_id(&[1, 2, 3]), stream_id(&[3, 2, 1]));
        assert_ne!(stream_id(&[0]), stream_id(&[1]));
    }
}
