//! Shared experiment infrastructure: options, poison-range specs, report
//! simulation, trial loops, and the perf-tracking JSON writer.
//!
//! Trials are embarrassingly parallel — every `(experiment, config, trial)`
//! coordinate derives its own RNG stream — so the trial loops fan out over
//! [`dap_core::parallel_map`] and fold in fixed order; results are
//! bit-identical for any thread count.

use dap_attack::{Anchor, Attack, UniformAttack};
use dap_core::{parallel_map, DapConfig, Population, Scheme};
use dap_datasets::Dataset;
use dap_emf::EmfConfig;
use dap_estimation::rng::derive;
use dap_estimation::stats::mean;
use dap_estimation::{cached_for_numeric, Grid, PoisonRegion, TransformMatrix};
use dap_ldp::{Epsilon, NumericMechanism, PiecewiseMechanism};
use rand::rngs::StdRng;
use rand::RngCore;
use std::io::Write;
use std::sync::Arc;

/// Global experiment options parsed from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpOptions {
    /// Total population size N per trial.
    pub n: usize,
    /// Independent trials per configuration (MSE averages over these).
    pub trials: usize,
    /// Master seed; every (experiment, config, trial) derives its own
    /// stream, so results are reproducible and order-independent.
    pub seed: u64,
    /// Cap on the EMF output-bucket count.
    pub max_d_out: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions { n: 20_000, trials: 3, seed: 42, max_d_out: 128 }
    }
}

impl ExpOptions {
    /// Parses `--n`, `--trials`, `--seed`, `--max-dout`, `--paper-scale`
    /// from an argument list. An **unknown** `--flag` is an error — a typo
    /// like `--trails 10` must not silently run the default — and a
    /// recognized flag whose value is missing or fails to parse is an
    /// error naming the flag (`--n 20k` must not silently run the default
    /// N). Non-flag tokens (the experiment id, file paths) are skipped.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        Self::parse_allowing(args, &[])
    }

    /// [`ExpOptions::parse`] with an allowlist of additional flags owned
    /// by the caller (the `experiments` binary passes its own — e.g.
    /// `--shard`, `--out` — here; their values never start with `--`, so
    /// they are skipped as non-flag tokens).
    pub fn parse_allowing(args: &[String], allowed: &[&str]) -> Result<Self, String> {
        fn grab<T: std::str::FromStr>(
            flag: &str,
            value: Option<&String>,
        ) -> Result<T, String> {
            let v = value.ok_or_else(|| format!("flag {flag} is missing its value"))?;
            v.parse::<T>()
                .map_err(|_| format!("invalid value '{v}' for flag {flag}"))
        }

        let mut opts = ExpOptions::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--n" => opts.n = grab("--n", it.next())?,
                "--trials" => opts.trials = grab("--trials", it.next())?,
                "--max-dout" => opts.max_d_out = grab("--max-dout", it.next())?,
                "--seed" => opts.seed = grab("--seed", it.next())?,
                "--paper-scale" => {
                    opts.n = 1_000_000;
                    opts.max_d_out = 512;
                }
                flag if flag.starts_with("--") && !allowed.contains(&flag) => {
                    return Err(format!(
                        "unknown flag {flag}; run `experiments help` for the flag list"
                    ));
                }
                _ => {} // positional token (experiment id, shard file, …)
            }
        }
        Ok(opts)
    }
}

/// The paper's default DAP deployment for one experiment cell, with the
/// harness's `d'` cap applied — hoisted here because every figure driver
/// spelled this struct update out by hand.
pub fn dap_config(opts: &ExpOptions, eps: f64, scheme: Scheme) -> DapConfig {
    DapConfig { max_d_out: opts.max_d_out, ..DapConfig::paper_default(eps, scheme) }
}

/// EMF sizing, report histogram and (cached) transform matrix for one batch
/// of reports — the setup block the figure drivers used to inline.
pub fn emf_setup(
    mech: &dyn NumericMechanism,
    reports: &[f64],
    eps: f64,
    max_d_out: usize,
    region: &PoisonRegion,
) -> (EmfConfig, Vec<f64>, Arc<TransformMatrix>) {
    let cfg = EmfConfig::capped(reports.len(), eps, max_d_out);
    let (olo, ohi) = mech.output_range();
    let counts = Grid::new(olo, ohi, cfg.d_out).counts(reports);
    let matrix = cached_for_numeric(mech, cfg.d_in, cfg.d_out, region);
    (cfg, counts, matrix)
}

/// The paper's four poison ranges over `[O', C]` (right side, `O' = 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoiRange {
    /// `Poi[3C/4, C]`.
    TopQuarter,
    /// `Poi[C/2, C]`.
    TopHalf,
    /// `Poi[O, C/2]`.
    LowerHalf,
    /// `Poi[O, C]`.
    Full,
}

impl PoiRange {
    /// All four, in Fig. 6's order.
    pub const ALL: [PoiRange; 4] =
        [PoiRange::TopQuarter, PoiRange::TopHalf, PoiRange::LowerHalf, PoiRange::Full];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            PoiRange::TopQuarter => "[3C/4,C]",
            PoiRange::TopHalf => "[C/2,C]",
            PoiRange::LowerHalf => "[O,C/2]",
            PoiRange::Full => "[O,C]",
        }
    }

    /// Fractions of `C` for the range ends.
    pub fn fractions(self) -> (f64, f64) {
        match self {
            PoiRange::TopQuarter => (0.75, 1.0),
            PoiRange::TopHalf => (0.5, 1.0),
            PoiRange::LowerHalf => (0.0, 0.5),
            PoiRange::Full => (0.0, 1.0),
        }
    }

    /// The uniform attack over this range (mechanism-relative).
    pub fn attack(self) -> UniformAttack {
        let (a, b) = self.fractions();
        // `Abs(0.0)` for the O-anchored lower ends keeps the range valid
        // for every group budget.
        if a == 0.0 {
            UniformAttack::new(Anchor::Abs(0.0), Anchor::OfUpper(b))
        } else {
            UniformAttack::of_upper(a, b)
        }
    }
}

/// Perturbs every value once through the mechanism's monomorphic batch API
/// ([`NumericMechanism::perturb_into`]), returning one report per value.
pub fn perturb_all<M: NumericMechanism, R: RngCore>(
    mech: &M,
    values: &[f64],
    rng: &mut R,
) -> Vec<f64> {
    let mut reports = vec![0.0; values.len()];
    for (slot, &v) in reports.chunks_exact_mut(1).zip(values) {
        mech.perturb_into(v, slot, rng);
    }
    reports
}

/// Simulates a single-batch collection at budget `eps`: honest users perturb
/// once with PM, the coalition attacks. Returns `(reports, honest_mean)`.
pub fn simulate_batch<R: RngCore>(
    dataset: Dataset,
    n: usize,
    gamma: f64,
    eps: f64,
    attack: &dyn Attack,
    rng: &mut R,
) -> (Vec<f64>, f64) {
    let m = (n as f64 * gamma).round() as usize;
    let honest = dataset.generate_signed(n - m, rng);
    let truth = mean(&honest);
    let mech = PiecewiseMechanism::new(Epsilon::of(eps));
    let mut reports = perturb_all(&mech, &honest, rng);
    reports.extend(attack.reports(m, &mech, rng));
    (reports, truth)
}

/// Builds a population for protocol-level experiments. Returns
/// `(population, honest_mean)`.
pub fn build_population<R: RngCore + ?Sized>(
    dataset: Dataset,
    n: usize,
    gamma: f64,
    rng: &mut R,
) -> (Population, f64) {
    let m = (n as f64 * gamma).round() as usize;
    let honest = dataset.generate_signed(n - m, rng);
    let truth = mean(&honest);
    (Population { honest, byzantine: m }, truth)
}

/// The RNG stream for trial `t` of the experiment coordinate `stream`.
///
/// Concrete (not `dyn`) so the protocol's RNG-generic hot paths
/// monomorphize all the way down to inlined draws.
pub fn trial_rng(opts: &ExpOptions, stream: u64, t: usize) -> StdRng {
    derive(opts.seed, stream.wrapping_mul(1_000_003).wrapping_add(t as u64))
}

/// Runs `trials` evaluations of `f` with derived RNG streams and returns the
/// MSE of the produced estimates against the per-trial truth. Trials run in
/// parallel; the fold order is fixed, so the result is thread-count
/// independent.
pub fn mse_over_trials<F>(opts: &ExpOptions, stream: u64, f: F) -> f64
where
    F: Fn(&mut StdRng) -> (f64, f64) + Sync, // (estimate, truth)
{
    let results = parallel_map((0..opts.trials).collect(), |t| {
        let mut rng = trial_rng(opts, stream, t);
        f(&mut rng)
    });
    let se: f64 = results.iter().map(|(est, truth)| (est - truth) * (est - truth)).sum();
    se / opts.trials as f64
}

/// [`mses_over_trials`] whose closure also receives the trial index, for
/// drivers that pre-compute shared per-trial inputs (e.g. one population
/// serving several experiment columns).
pub fn mses_over_trials_indexed<F>(
    opts: &ExpOptions,
    stream: u64,
    variants: usize,
    f: F,
) -> Vec<f64>
where
    F: Fn(usize, &mut StdRng) -> (Vec<f64>, f64) + Sync, // (estimates, truth)
{
    let results = parallel_map((0..opts.trials).collect(), |t| {
        let mut rng = trial_rng(opts, stream, t);
        f(t, &mut rng)
    });
    let mut mses = vec![0.0; variants];
    for (estimates, truth) in &results {
        assert_eq!(estimates.len(), variants, "variant count mismatch");
        for (m, est) in mses.iter_mut().zip(estimates) {
            *m += (est - truth) * (est - truth);
        }
    }
    mses.iter_mut().for_each(|m| *m /= opts.trials as f64);
    mses
}

/// Multi-variant trial loop: `f` produces one estimate per variant from the
/// *same* simulated data (common random numbers — e.g. every DAP scheme on
/// one shared protocol execution, or every defense on one shared batch).
/// Returns the per-variant MSEs, in `f`'s output order.
pub fn mses_over_trials<F>(opts: &ExpOptions, stream: u64, variants: usize, f: F) -> Vec<f64>
where
    F: Fn(&mut StdRng) -> (Vec<f64>, f64) + Sync, // (estimates, truth)
{
    mses_over_trials_indexed(opts, stream, variants, |_, rng| f(rng))
}

/// Per-trial means of arbitrary per-variant statistics (no truth/MSE
/// folding) — used for `|γ̂ − γ|`-style panels.
pub fn means_over_trials<F>(opts: &ExpOptions, stream: u64, variants: usize, f: F) -> Vec<f64>
where
    F: Fn(&mut StdRng) -> Vec<f64> + Sync,
{
    let results = parallel_map((0..opts.trials).collect(), |t| {
        let mut rng = trial_rng(opts, stream, t);
        f(&mut rng)
    });
    let mut acc = vec![0.0; variants];
    for stats in &results {
        assert_eq!(stats.len(), variants, "variant count mismatch");
        for (a, s) in acc.iter_mut().zip(stats) {
            *a += s;
        }
    }
    acc.iter_mut().for_each(|a| *a /= opts.trials as f64);
    acc
}

/// The paper's scheme labels next to baselines, for table headers.
pub fn scheme_columns() -> Vec<String> {
    let mut cols: Vec<String> = Scheme::ALL.iter().map(|s| s.label().to_string()).collect();
    cols.push("Ostrich".into());
    cols.push("Trimming".into());
    cols
}

/// Formats an MSE in the paper's scientific style.
pub fn sci(v: f64) -> String {
    format!("{v:9.2e}")
}

/// A mechanism-agnostic stable stream id from experiment coordinates.
pub fn stream_id(parts: &[usize]) -> u64 {
    parts
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |acc, &p| {
            (acc ^ p as u64).wrapping_mul(0x1000_0000_01b3)
        })
}

/// Wall-clock (ms) of a fixed-iteration dense-reference EM solve at the
/// fig7 working shape (`d_in = 16`, `d' = 128`, 40 pinned iterations),
/// median of three runs.
///
/// This is the same-run calibration yardstick the fig7 perf gate divides
/// by: the yardstick and the measured experiment run on the same machine
/// moments apart, so container-speed drift cancels out of the
/// `median / calib` ratio, while a real regression in the measured path
/// (which the dense reference never takes — it ignores the analyzed band
/// structure and the report cache alike) moves the ratio.
pub fn calibrate_dense_solve_ms() -> f64 {
    use dap_estimation::em::{self, EmOptions, MStep};
    let mech = PiecewiseMechanism::with_epsilon(1.0).expect("ε=1 is valid");
    let (d_in, d_out) = (16, 128);
    let matrix = cached_for_numeric(&mech, d_in, d_out, &PoisonRegion::RightOf(0.0));
    // Any strictly positive histogram exercises the full arithmetic;
    // `tol = 0` pins the iteration count, so convergence luck cannot move
    // the yardstick. The hump mimics a unimodal report histogram.
    let counts: Vec<f64> = (0..d_out)
        .map(|j| 1.0 + 150.0 * (-((j as f64 - 64.0) / 20.0).powi(2)).exp())
        .collect();
    let share = 1.0 / (d_in + matrix.poison_buckets().len()).max(1) as f64;
    let x0 = vec![share; d_in];
    let mut y0 = vec![0.0; d_out];
    for &j in matrix.poison_buckets() {
        y0[j] = share;
    }
    // 2000 pinned iterations put the yardstick around 5–10 ms on the CI
    // container — long enough that timer granularity and scheduler noise
    // are well under 1% of the reading, short enough to stay negligible
    // next to the experiment it normalizes.
    let opts = EmOptions { tol: 0.0, max_iters: 2000 };
    let mut times = [0.0f64; 3];
    for slot in &mut times {
        let start = std::time::Instant::now();
        std::hint::black_box(em::solve_dense_reference(
            &matrix,
            &counts,
            MStep::Free,
            &x0,
            &y0,
            &opts,
        ));
        *slot = start.elapsed().as_secs_f64() * 1e3;
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    times[1]
}

/// The PR-over-PR baseline history for one bench file: every re-baseline
/// appends the fresh median to the previous file's `trend_wall_ms` array
/// (seeded from its bare `median_wall_ms` when the old schema carried no
/// trend yet), so a drifting machine shows up as a drifting series rather
/// than a silently moved goalpost.
fn bench_trend(previous: &str, fresh_median: f64) -> Vec<String> {
    let mut trend: Vec<String> = previous
        .split("\"trend_wall_ms\": [")
        .nth(1)
        .and_then(|tail| tail.split(']').next())
        .map(|list| {
            list.split(',')
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty())
                .collect()
        })
        .unwrap_or_default();
    if trend.is_empty() {
        if let Some(prev) = previous
            .split("\"median_wall_ms\": ")
            .nth(1)
            .and_then(|tail| tail.split([',', '\n']).next())
        {
            let prev = prev.trim();
            if !prev.is_empty() {
                trend.push(prev.to_string());
            }
        }
    }
    trend.push(format!("{fresh_median:.1}"));
    trend
}

/// Writes the perf-tracking JSON for one experiment run: the options it ran
/// under, the wall-clock of each repeat with the median the CI trend tracks
/// (`bench_trend` carries the re-baseline history forward), and the
/// same-run calibration yardstick with the `median / calib` ratio the perf
/// gate compares across machines. Hand-rolled JSON — the workspace has no
/// serde.
pub fn write_bench_json(
    path: &str,
    experiment: &str,
    opts: &ExpOptions,
    runs_ms: &[f64],
    calib_ms: f64,
) -> std::io::Result<()> {
    assert!(!runs_ms.is_empty(), "need at least one timed run");
    assert!(calib_ms > 0.0, "calibration must be a positive wall-clock");
    let mut sorted = runs_ms.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = sorted[sorted.len() / 2];
    let runs: Vec<String> = runs_ms.iter().map(|ms| format!("{ms:.1}")).collect();
    let trend = bench_trend(&std::fs::read_to_string(path).unwrap_or_default(), median);
    let json = format!(
        "{{\n  \"experiment\": \"{}\",\n  \"n\": {},\n  \"trials\": {},\n  \"seed\": {},\n  \"max_d_out\": {},\n  \"median_wall_ms\": {:.1},\n  \"runs_wall_ms\": [{}],\n  \"trend_wall_ms\": [{}],\n  \"calib_wall_ms\": {:.1},\n  \"median_over_calib\": {:.3}\n}}\n",
        experiment,
        opts.n,
        opts.trials,
        opts.seed,
        opts.max_d_out,
        median,
        runs.join(", "),
        trend.join(", "),
        calib_ms,
        median / calib_ms,
    );
    let mut file = std::fs::File::create(path)?;
    file.write_all(json.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::rng::seeded;

    #[test]
    fn parse_reads_flags_and_skips_positionals() {
        let args: Vec<String> =
            ["fig7", "--n", "5000", "--trials", "7", "--seed", "9", "--max-dout", "32"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let opts = ExpOptions::parse(&args).expect("valid flags");
        assert_eq!(opts.n, 5000);
        assert_eq!(opts.trials, 7);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.max_d_out, 32);
    }

    #[test]
    fn parse_rejects_unknown_flags_unless_allowlisted() {
        let args: Vec<String> =
            ["--trails", "10"].iter().map(|s| s.to_string()).collect();
        let err = ExpOptions::parse(&args).expect_err("typo'd flag must not run defaults");
        assert!(err.contains("--trails"), "unhelpful error: {err}");

        let args: Vec<String> =
            ["--shard", "0/2", "--n", "5000"].iter().map(|s| s.to_string()).collect();
        assert!(ExpOptions::parse(&args).is_err(), "--shard is the binary's, not ours");
        let opts =
            ExpOptions::parse_allowing(&args, &["--shard"]).expect("allowlisted flag");
        assert_eq!(opts.n, 5000);
    }

    #[test]
    fn parse_rejects_bad_values_naming_the_flag() {
        let args: Vec<String> = ["--n", "20k"].iter().map(|s| s.to_string()).collect();
        let err = ExpOptions::parse(&args).expect_err("20k is not a count");
        assert!(err.contains("--n") && err.contains("20k"), "unhelpful error: {err}");

        let args: Vec<String> = ["--trials"].iter().map(|s| s.to_string()).collect();
        let err = ExpOptions::parse(&args).expect_err("missing value");
        assert!(err.contains("--trials"), "unhelpful error: {err}");

        let args: Vec<String> = ["--seed", "-3"].iter().map(|s| s.to_string()).collect();
        assert!(ExpOptions::parse(&args).is_err(), "negative seed must not parse");
    }

    #[test]
    fn paper_scale_flag() {
        let args: Vec<String> = ["--paper-scale"].iter().map(|s| s.to_string()).collect();
        let opts = ExpOptions::parse(&args).expect("valid flags");
        assert_eq!(opts.n, 1_000_000);
    }

    #[test]
    fn poi_ranges_resolve_inside_domain() {
        let mech = PiecewiseMechanism::with_epsilon(1.0).unwrap();
        let mut rng = seeded(1);
        for range in PoiRange::ALL {
            let reports = range.attack().reports(100, &mech, &mut rng);
            let (lo_f, hi_f) = range.fractions();
            let (lo, hi) = (lo_f * mech.c(), hi_f * mech.c());
            assert!(
                reports.iter().all(|&v| v >= lo - 1e-9 && v <= hi + 1e-9),
                "{}",
                range.label()
            );
        }
    }

    #[test]
    fn simulate_batch_report_count() {
        let mut rng = seeded(2);
        let attack = PoiRange::TopHalf.attack();
        let (reports, truth) = simulate_batch(Dataset::Beta25, 1000, 0.25, 1.0, &attack, &mut rng);
        assert_eq!(reports.len(), 1000);
        assert!((-1.0..=1.0).contains(&truth));
    }

    #[test]
    fn mse_over_trials_is_deterministic() {
        let opts = ExpOptions { trials: 3, ..ExpOptions::default() };
        let f = |rng: &mut StdRng| {
            use rand::Rng;
            (rng.gen::<f64>(), 0.5)
        };
        let a = mse_over_trials(&opts, 17, f);
        let b = mse_over_trials(&opts, 17, f);
        assert_eq!(a, b);
        let c = mse_over_trials(&opts, 18, f);
        assert_ne!(a, c);
    }

    #[test]
    fn multi_variant_trials_match_single_variant_loops() {
        let opts = ExpOptions { trials: 4, ..ExpOptions::default() };
        let multi = mses_over_trials(&opts, 23, 2, |rng| {
            use rand::Rng;
            let x: f64 = rng.gen();
            (vec![x, x * 2.0], 0.5)
        });
        let single = mse_over_trials(&opts, 23, |rng| {
            use rand::Rng;
            (rng.gen::<f64>(), 0.5)
        });
        // The first variant consumes the same stream as the single loop.
        assert_eq!(multi[0], single);
        assert_ne!(multi[0], multi[1]);
    }

    #[test]
    fn stream_ids_differ() {
        assert_ne!(stream_id(&[1, 2, 3]), stream_id(&[3, 2, 1]));
        assert_ne!(stream_id(&[0]), stream_id(&[1]));
    }

    #[test]
    fn bench_json_shape() {
        let opts = ExpOptions::default();
        let path = std::env::temp_dir().join("dap_bench_json_test.json");
        let path = path.to_str().expect("utf8 temp path");
        std::fs::remove_file(path).ok();
        write_bench_json(path, "fig7", &opts, &[30.0, 10.0, 20.0], 8.0).expect("writable");
        let body = std::fs::read_to_string(path).expect("readable");
        assert!(body.contains("\"experiment\": \"fig7\""));
        assert!(body.contains("\"median_wall_ms\": 20.0"));
        assert!(body.contains("[30.0, 10.0, 20.0]"));
        assert!(body.contains("\"trend_wall_ms\": [20.0]"));
        assert!(body.contains("\"calib_wall_ms\": 8.0"));
        assert!(body.contains("\"median_over_calib\": 2.500"));
        // A re-baseline appends to the trend, never rewrites history.
        write_bench_json(path, "fig7", &opts, &[25.0], 10.0).expect("writable");
        let body = std::fs::read_to_string(path).expect("readable");
        assert!(body.contains("\"trend_wall_ms\": [20.0, 25.0]"), "got: {body}");
        assert!(body.contains("\"median_over_calib\": 2.500"), "got: {body}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn calibration_yardstick_is_a_positive_wall_clock() {
        let ms = calibrate_dense_solve_ms();
        assert!(ms.is_finite() && ms > 0.0, "got {ms}");
    }

    #[test]
    fn bench_trend_seeds_from_a_pre_trend_baseline() {
        // The seed-era schema carried only `median_wall_ms`; the first
        // re-baseline promotes it to the trend's opening entry.
        let old = "{\n  \"median_wall_ms\": 217.8,\n  \"runs_wall_ms\": [217.8]\n}\n";
        assert_eq!(bench_trend(old, 252.3), vec!["217.8", "252.3"]);
        // And with a trend present, the bare median is ignored.
        let with = "{\n  \"median_wall_ms\": 252.3,\n  \"trend_wall_ms\": [217.8, 252.3]\n}\n";
        assert_eq!(bench_trend(with, 240.0), vec!["217.8", "252.3", "240.0"]);
        assert_eq!(bench_trend("", 10.0), vec!["10.0"]);
    }
}
