//! Fig. 9: (a) comparison with the k-means-based defense under BBA,
//! (b) IMA — EMF-based integration vs k-means alone, (c)(d) categorical
//! frequency estimation on COVID-19.

use crate::common::{
    build_population, dap_config, mse_over_trials, mses_over_trials, sci, simulate_batch,
    stream_id, ExpOptions, PoiRange,
};
use dap_attack::InputManipulationAttack;
use dap_core::categorical::{
    categorical_dap, ostrich_frequencies, simulate_reports, CategoricalDapConfig,
};
use dap_core::ima::emf_based_ima_mean;
use dap_core::{Dap, Scheme};
use dap_datasets::{covid_frequencies, sample_covid, Dataset, COVID_GROUPS};
use dap_defenses::{KMeansDefense, MeanDefense};
use dap_emf::EmfConfig;
use dap_estimation::rng::derive;
use dap_ldp::{Epsilon, KRandomizedResponse, PiecewiseMechanism};

/// β axis of the k-means comparisons.
pub const BETAS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];
/// ε axes.
pub const EPS_AXIS: [f64; 5] = [0.25, 0.5, 1.0, 1.5, 2.0];
/// Subset count for the k-means defense (the paper uses 10⁶; the crossover
/// behaviour is stable from ~10⁴, and the harness default keeps runs quick).
pub const SUBSETS: usize = 2_000;

/// Panel (a): DAP vs k-means under the BBA (Taxi, Poi[C/2, C], γ = 0.25).
fn panel_a(opts: &ExpOptions) {
    println!("== Fig. 9(a): vs k-means defense (Taxi, Poi[C/2,C], gamma = 0.25) ==");
    print!("{:<18}", "scheme");
    for eps in EPS_AXIS {
        print!(" {:>10}", format!("eps={eps}"));
    }
    println!();
    // One shared protocol execution per (eps, trial) covers all three rows.
    let scheme_columns: Vec<Vec<f64>> = EPS_AXIS
        .into_iter()
        .enumerate()
        .map(|(ei, eps)| {
            mses_over_trials(opts, stream_id(&[900, ei]), Scheme::ALL.len(), |rng| {
                let (population, truth) = build_population(Dataset::Taxi, opts.n, 0.25, rng);
                let dap = Dap::new(dap_config(opts, eps, Scheme::Emf), PiecewiseMechanism::new)
                    .expect("valid config");
                let outs = dap
                    .run_schemes(&population, &PoiRange::TopHalf.attack(), &Scheme::ALL, rng)
                    .expect("valid run");
                (outs.into_iter().map(|o| o.mean).collect(), truth)
            })
        })
        .collect();
    for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
        print!("{:<18}", scheme.label());
        for col in &scheme_columns {
            print!(" {:>10}", sci(col[si]));
        }
        println!();
    }
    for (bi, beta) in BETAS.into_iter().enumerate() {
        print!("{:<18}", format!("K-means(b={beta})"));
        let defense = KMeansDefense::new(beta, SUBSETS);
        for (ei, eps) in EPS_AXIS.into_iter().enumerate() {
            let mse = mse_over_trials(opts, stream_id(&[910, bi, ei]), |rng| {
                let (reports, truth) = simulate_batch(
                    Dataset::Taxi,
                    opts.n,
                    0.25,
                    eps,
                    &PoiRange::TopHalf.attack(),
                    rng,
                );
                (defense.estimate_mean(&reports, rng), truth)
            });
            print!(" {:>10}", sci(mse));
        }
        println!();
    }
    println!("expected shape: DAP_EMF*/CEMF* orders of magnitude below every k-means row.\n");
}

/// Panel (b): IMA — EMF-based integration vs k-means alone (Taxi, γ = 0.25,
/// ε = 1).
fn panel_b(opts: &ExpOptions) {
    println!("== Fig. 9(b): IMA defense (Taxi, gamma = 0.25, eps = 1) ==");
    print!("{:<18}", "scheme");
    for beta in BETAS {
        print!(" {:>10}", format!("beta={beta}"));
    }
    println!();
    let eps = 1.0;
    for (gi, g) in [-1.0, 1.0, 0.0].into_iter().enumerate() {
        let attack = InputManipulationAttack { g };
        // EMF-based is β-independent; print it as a constant row.
        let emf_mse = mse_over_trials(opts, stream_id(&[920, gi]), |rng| {
            let (reports, truth) =
                simulate_batch(Dataset::Taxi, opts.n, 0.25, eps, &attack, rng);
            let cfg = EmfConfig::capped(reports.len(), eps, opts.max_d_out);
            let mech = PiecewiseMechanism::new(Epsilon::of(eps));
            let out = emf_based_ima_mean(&mech, &reports, &cfg);
            (out.mean, truth)
        });
        print!("{:<18}", format!("EMF-based(g={g})"));
        for _ in BETAS {
            print!(" {:>10}", sci(emf_mse));
        }
        println!();

        print!("{:<18}", format!("K-means(g={g})"));
        for (bi, beta) in BETAS.into_iter().enumerate() {
            let defense = KMeansDefense::new(beta, SUBSETS);
            let mse = mse_over_trials(opts, stream_id(&[930, gi, bi]), |rng| {
                let (reports, truth) =
                    simulate_batch(Dataset::Taxi, opts.n, 0.25, eps, &attack, rng);
                (defense.estimate_mean(&reports, rng), truth)
            });
            print!(" {:>10}", sci(mse));
        }
        println!();
    }
    println!("expected shape: EMF-based below k-means for each g (paper: ~28-30% improvement).\n");
}

/// Panels (c)(d): categorical frequency estimation on COVID-19.
fn panel_cd(opts: &ExpOptions) {
    for (panel, poison) in [("c", vec![10usize]), ("d", vec![10, 11, 12])] {
        println!(
            "== Fig. 9({panel}): COVID-19 frequency MSE (poison on {poison:?}, gamma = 0.25) =="
        );
        print!("{:<12}", "scheme");
        for eps in EPS_AXIS {
            print!(" {:>10}", format!("eps={eps}"));
        }
        println!();
        let truth = covid_frequencies();
        let freq_mse = |est: &[f64]| -> f64 {
            est.iter().zip(truth.iter()).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
                / COVID_GROUPS as f64
        };
        for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
            print!("{:<12}", scheme.label());
            for (ei, eps) in EPS_AXIS.into_iter().enumerate() {
                let mut acc = 0.0;
                for t in 0..opts.trials {
                    let mut rng = derive(opts.seed, stream_id(&[940, si, ei, t, poison.len()]));
                    let m = (opts.n as f64 * 0.25).round() as usize;
                    let honest = sample_covid(opts.n - m, &mut rng);
                    let cfg = CategoricalDapConfig::paper_default(eps, scheme);
                    let out =
                        categorical_dap(&honest, m, &poison, COVID_GROUPS, &cfg, &mut rng);
                    acc += freq_mse(&out.frequencies);
                }
                print!(" {:>10}", sci(acc / opts.trials as f64));
            }
            println!();
        }
        print!("{:<12}", "Ostrich");
        for (ei, eps) in EPS_AXIS.into_iter().enumerate() {
            let mut acc = 0.0;
            for t in 0..opts.trials {
                let mut rng = derive(opts.seed, stream_id(&[950, ei, t, poison.len()]));
                let mech =
                    KRandomizedResponse::new(Epsilon::of(eps), COVID_GROUPS).expect("k >= 2");
                let m = (opts.n as f64 * 0.25).round() as usize;
                let honest = sample_covid(opts.n - m, &mut rng);
                let counts = simulate_reports(&mech, &honest, m, &poison, &mut rng);
                acc += freq_mse(&ostrich_frequencies(&mech, &counts));
            }
            print!(" {:>10}", sci(acc / opts.trials as f64));
        }
        println!("\nexpected shape: Ostrich flat around 1e-1..1e-2; DAP schemes far below and improving with eps.\n");
    }
}

/// Runs all panels.
pub fn run(opts: &ExpOptions) {
    panel_a(opts);
    panel_b(opts);
    panel_cd(opts);
}

/// Sanity used by integration tests: one cheap cell of panel (a).
pub fn smoke_cell(opts: &ExpOptions) -> (f64, f64) {
    let dap = crate::fig6::dap_mse(
        Dataset::Taxi,
        PoiRange::TopHalf,
        0.25,
        1.0,
        Scheme::EmfStar,
        opts,
        1,
    );
    let kmeans = mse_over_trials(opts, 2, |rng| {
        let (reports, truth) =
            simulate_batch(Dataset::Taxi, opts.n, 0.25, 1.0, &PoiRange::TopHalf.attack(), rng);
        (KMeansDefense::new(0.5, 200).estimate_mean(&reports, rng), truth)
    });
    (dap, kmeans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dap_estimation::stats::mean;

    #[test]
    fn dap_beats_kmeans_on_the_fig9a_cell() {
        let opts = ExpOptions { n: 6_000, trials: 1, seed: 5, max_d_out: 64 };
        let (dap, kmeans) = smoke_cell(&opts);
        assert!(dap < kmeans, "DAP {dap:.2e} !< k-means {kmeans:.2e}");
    }

    #[test]
    fn ima_mean_is_used_in_panel_b() {
        // Smoke: the EMF-based defense improves on the raw mean for g = 1.
        let opts = ExpOptions { n: 8_000, trials: 1, seed: 6, max_d_out: 64 };
        let attack = InputManipulationAttack { g: 1.0 };
        let emf_mse = mse_over_trials(&opts, 3, |rng| {
            let (reports, truth) = simulate_batch(Dataset::Taxi, opts.n, 0.25, 1.0, &attack, rng);
            let cfg = EmfConfig::capped(reports.len(), 1.0, opts.max_d_out);
            let mech = PiecewiseMechanism::new(Epsilon::of(1.0));
            (emf_based_ima_mean(&mech, &reports, &cfg).mean, truth)
        });
        let raw_mse = mse_over_trials(&opts, 3, |rng| {
            let (reports, truth) = simulate_batch(Dataset::Taxi, opts.n, 0.25, 1.0, &attack, rng);
            (mean(&reports), truth)
        });
        assert!(emf_mse < raw_mse, "EMF-based {emf_mse:.2e} !< raw {raw_mse:.2e}");
    }
}
