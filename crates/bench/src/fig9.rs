//! Fig. 9: (a) comparison with the k-means-based defense under BBA,
//! (b) IMA — EMF-based integration vs k-means alone, (c)(d) categorical
//! frequency estimation on COVID-19.

use crate::cell::{AttackSpec, Cell, CellKind, CatPoison, ExperimentId, MechKind, SchemeSet};
use crate::common::{sci, ExpOptions, PoiRange};
use crate::engine::{run_cells, ResultMap};
use crate::{out, outln};
use dap_core::{Scheme, Weighting};
use dap_datasets::Dataset;

/// β axis of the k-means comparisons.
pub const BETAS: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];
/// ε axes.
pub const EPS_AXIS: [f64; 5] = [0.25, 0.5, 1.0, 1.5, 2.0];
/// Subset count for the k-means defense (the paper uses 10⁶; the crossover
/// behaviour is stable from ~10⁴, and the harness default keeps runs quick).
pub const SUBSETS: usize = 2_000;
/// IMA targets of panel (b), in the paper's row order.
pub const IMA_GS: [f64; 3] = [-1.0, 1.0, 0.0];
/// Panels (c)(d) poison sets.
pub const CD_PANELS: [(&str, CatPoison); 2] = [("c", CatPoison::Single), ("d", CatPoison::Triple)];

fn a_scheme_cell(eps: f64) -> Cell {
    Cell::new(
        ExperimentId::Fig9,
        "a",
        CellKind::PmMse {
            dataset: Dataset::Taxi,
            gamma: 0.25,
            eps,
            attack: AttackSpec::Poi(PoiRange::TopHalf),
            schemes: SchemeSet::All,
            defenses: false,
            weighting: Weighting::AlgorithmFive,
            mechanism: MechKind::Pm,
        },
    )
}

fn a_kmeans_cell(beta: f64, eps: f64) -> Cell {
    Cell::new(
        ExperimentId::Fig9,
        "a",
        CellKind::KMeans {
            dataset: Dataset::Taxi,
            gamma: 0.25,
            eps,
            attack: AttackSpec::Poi(PoiRange::TopHalf),
            beta,
            subsets: SUBSETS,
        },
    )
}

fn b_emf_cell(g: f64) -> Cell {
    Cell::new(
        ExperimentId::Fig9,
        "b",
        CellKind::ImaEmf { dataset: Dataset::Taxi, gamma: 0.25, eps: 1.0, g },
    )
}

fn b_kmeans_cell(g: f64, beta: f64) -> Cell {
    Cell::new(
        ExperimentId::Fig9,
        "b",
        CellKind::KMeans {
            dataset: Dataset::Taxi,
            gamma: 0.25,
            eps: 1.0,
            attack: AttackSpec::Ima { g },
            beta,
            subsets: SUBSETS,
        },
    )
}

fn cd_dap_cell(panel: &'static str, poison: CatPoison, scheme: Scheme, eps: f64) -> Cell {
    Cell::new(ExperimentId::Fig9, panel, CellKind::CatDap { scheme, gamma: 0.25, eps, poison })
}

fn cd_ostrich_cell(panel: &'static str, poison: CatPoison, eps: f64) -> Cell {
    Cell::new(ExperimentId::Fig9, panel, CellKind::CatOstrich { gamma: 0.25, eps, poison })
}

/// All panels' cells.
pub fn cells(_opts: &ExpOptions) -> Vec<Cell> {
    let mut cells = Vec::new();
    for eps in EPS_AXIS {
        cells.push(a_scheme_cell(eps));
    }
    for beta in BETAS {
        for eps in EPS_AXIS {
            cells.push(a_kmeans_cell(beta, eps));
        }
    }
    for g in IMA_GS {
        cells.push(b_emf_cell(g));
        for beta in BETAS {
            cells.push(b_kmeans_cell(g, beta));
        }
    }
    for (panel, poison) in CD_PANELS {
        for scheme in Scheme::ALL {
            for eps in EPS_AXIS {
                cells.push(cd_dap_cell(panel, poison, scheme, eps));
            }
        }
        for eps in EPS_AXIS {
            cells.push(cd_ostrich_cell(panel, poison, eps));
        }
    }
    cells
}

/// Renders all panels.
pub fn render(_opts: &ExpOptions, r: &ResultMap) -> String {
    let mut s = String::new();

    // Panel (a).
    outln!(s, "== Fig. 9(a): vs k-means defense (Taxi, Poi[C/2,C], gamma = 0.25) ==");
    out!(s, "{:<18}", "scheme");
    for eps in EPS_AXIS {
        out!(s, " {:>10}", format!("eps={eps}"));
    }
    outln!(s);
    for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
        out!(s, "{:<18}", scheme.label());
        for eps in EPS_AXIS {
            out!(s, " {:>10}", sci(r.get(&a_scheme_cell(eps))[si]));
        }
        outln!(s);
    }
    for beta in BETAS {
        out!(s, "{:<18}", format!("K-means(b={beta})"));
        for eps in EPS_AXIS {
            out!(s, " {:>10}", sci(r.get(&a_kmeans_cell(beta, eps))[0]));
        }
        outln!(s);
    }
    outln!(s, "expected shape: DAP_EMF*/CEMF* orders of magnitude below every k-means row.\n");

    // Panel (b).
    outln!(s, "== Fig. 9(b): IMA defense (Taxi, gamma = 0.25, eps = 1) ==");
    out!(s, "{:<18}", "scheme");
    for beta in BETAS {
        out!(s, " {:>10}", format!("beta={beta}"));
    }
    outln!(s);
    for g in IMA_GS {
        // EMF-based is β-independent; print it as a constant row.
        let emf_mse = r.get(&b_emf_cell(g))[0];
        out!(s, "{:<18}", format!("EMF-based(g={g})"));
        for _ in BETAS {
            out!(s, " {:>10}", sci(emf_mse));
        }
        outln!(s);
        out!(s, "{:<18}", format!("K-means(g={g})"));
        for beta in BETAS {
            out!(s, " {:>10}", sci(r.get(&b_kmeans_cell(g, beta))[0]));
        }
        outln!(s);
    }
    outln!(s, "expected shape: EMF-based below k-means for each g (paper: ~28-30% improvement).\n");

    // Panels (c)(d).
    for (panel, poison) in CD_PANELS {
        outln!(
            s,
            "== Fig. 9({panel}): COVID-19 frequency MSE (poison on {:?}, gamma = 0.25) ==",
            poison.groups()
        );
        out!(s, "{:<12}", "scheme");
        for eps in EPS_AXIS {
            out!(s, " {:>10}", format!("eps={eps}"));
        }
        outln!(s);
        for scheme in Scheme::ALL {
            out!(s, "{:<12}", scheme.label());
            for eps in EPS_AXIS {
                out!(s, " {:>10}", sci(r.get(&cd_dap_cell(panel, poison, scheme, eps))[0]));
            }
            outln!(s);
        }
        out!(s, "{:<12}", "Ostrich");
        for eps in EPS_AXIS {
            out!(s, " {:>10}", sci(r.get(&cd_ostrich_cell(panel, poison, eps))[0]));
        }
        outln!(s, "\nexpected shape: Ostrich flat around 1e-1..1e-2; DAP schemes far below and improving with eps.\n");
    }
    s
}

/// Enumerate → execute → print.
pub fn run(opts: &ExpOptions) {
    let cells = cells(opts);
    let results = run_cells(opts, &cells);
    print!("{}", render(opts, &ResultMap::from_results(&results)));
}

/// Sanity used by integration tests: one cheap DAP cell of panel (a) next
/// to one k-means cell, both through the engine.
pub fn smoke_cell(opts: &ExpOptions) -> (f64, f64) {
    let cells = vec![
        Cell::new(
            ExperimentId::Fig9,
            "smoke",
            CellKind::PmMse {
                dataset: Dataset::Taxi,
                gamma: 0.25,
                eps: 1.0,
                attack: AttackSpec::Poi(PoiRange::TopHalf),
                schemes: SchemeSet::One(Scheme::EmfStar),
                defenses: false,
                weighting: Weighting::AlgorithmFive,
                mechanism: MechKind::Pm,
            },
        ),
        Cell::new(
            ExperimentId::Fig9,
            "smoke",
            CellKind::KMeans {
                dataset: Dataset::Taxi,
                gamma: 0.25,
                eps: 1.0,
                attack: AttackSpec::Poi(PoiRange::TopHalf),
                beta: 0.5,
                subsets: 200,
            },
        ),
    ];
    let results = run_cells(opts, &cells);
    (results[0].values[0], results[1].values[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dap_beats_kmeans_on_the_fig9a_cell() {
        let opts = ExpOptions { n: 6_000, trials: 1, seed: 5, max_d_out: 64 };
        let (dap, kmeans) = smoke_cell(&opts);
        assert!(dap < kmeans, "DAP {dap:.2e} !< k-means {kmeans:.2e}");
    }

    #[test]
    fn ima_mean_is_used_in_panel_b() {
        // Smoke: the EMF-based defense improves on the raw mean for g = 1.
        let opts = ExpOptions { n: 8_000, trials: 1, seed: 6, max_d_out: 64 };
        let cells = vec![
            Cell::new(
                ExperimentId::Fig9,
                "smoke-ima",
                CellKind::ImaEmf { dataset: Dataset::Taxi, gamma: 0.25, eps: 1.0, g: 1.0 },
            ),
            Cell::new(
                ExperimentId::Fig9,
                "smoke-ima",
                CellKind::RawMean {
                    dataset: Dataset::Taxi,
                    gamma: 0.25,
                    eps: 1.0,
                    attack: AttackSpec::Ima { g: 1.0 },
                    mechanism: MechKind::Pm,
                },
            ),
        ];
        let results = run_cells(&opts, &cells);
        let (emf_mse, raw_mse) = (results[0].values[0], results[1].values[0]);
        assert!(emf_mse < raw_mse, "EMF-based {emf_mse:.2e} !< raw {raw_mse:.2e}");
    }
}
