//! Ablations for the design decisions DESIGN.md calls out:
//!
//! * `ablation-weights` — Algorithm 5's printed weight rule vs the Theorem 6
//!   proof's rule vs uniform weights;
//! * `ablation-split` — the baseline protocol's ε_α/ε budget split, with
//!   naive and probing-aware attackers;
//! * `ablation-mechanism` — PM-DAP vs Duchi-DAP under the same coalition
//!   (§V-D's mechanism-generality claim).

use crate::common::{build_population, dap_config, mse_over_trials, sci, stream_id, ExpOptions, PoiRange};
use dap_core::baseline::{BaselineConfig, BaselineProtocol};
use dap_core::{Dap, Scheme, Weighting};
use dap_datasets::Dataset;
use dap_ldp::{Duchi, PiecewiseMechanism};

/// ε axis shared by the ablations.
pub const EPS_AXIS: [f64; 4] = [0.25, 0.5, 1.0, 2.0];

/// Weight-rule ablation (Taxi, Poi[C/2, C], γ = 0.25, DAP_EMF*).
pub fn run_weights(opts: &ExpOptions) {
    println!("== Ablation: inter-group weighting rule (Taxi, Poi[C/2,C], gamma = 0.25, DAP_EMF*) ==");
    print!("{:<15}", "weighting");
    for eps in EPS_AXIS {
        print!(" {:>10}", format!("eps={eps}"));
    }
    println!();
    for (wi, (label, weighting)) in [
        ("Algorithm5", Weighting::AlgorithmFive),
        ("ProofOptimal", Weighting::ProofOptimal),
        ("Uniform", Weighting::Uniform),
    ]
    .into_iter()
    .enumerate()
    {
        print!("{:<15}", label);
        for (ei, eps) in EPS_AXIS.into_iter().enumerate() {
            let mse = mse_over_trials(opts, stream_id(&[1100, wi, ei]), |rng| {
                let (population, truth) = build_population(Dataset::Taxi, opts.n, 0.25, rng);
                let cfg = dap_config(opts, eps, Scheme::EmfStar);
                let cfg = dap_core::DapConfig { weighting, ..cfg };
                let out = Dap::new(cfg, PiecewiseMechanism::new)
                    .expect("valid config")
                    .run(&population, &PoiRange::TopHalf.attack(), rng)
                    .expect("valid run");
                (out.mean, truth)
            });
            print!(" {:>10}", sci(mse));
        }
        println!();
    }
    println!("\nnote: the paper's Algorithm 5 line 3 and its Theorem 6 proof derive different weights; this table measures the gap.\n");
}

/// Mechanism ablation: the same coalition and budget, PM vs Duchi as the
/// underlying mechanism (Taxi, γ = 0.25, point attack at the domain top —
/// the strongest attack both domains admit).
pub fn run_mechanism(opts: &ExpOptions) {
    println!("== Ablation: underlying mechanism (Taxi, gamma = 0.25, point attack at DR) ==");
    print!("{:<22}", "pipeline");
    for eps in EPS_AXIS {
        print!(" {:>10}", format!("eps={eps}"));
    }
    println!();
    let attack = dap_attack::PointAttack { value: dap_attack::Anchor::OfUpper(1.0) };
    for (mi, label) in ["PM + DAP_EMF*", "Duchi + DAP_EMF*"].into_iter().enumerate() {
        print!("{:<22}", label);
        for (ei, eps) in EPS_AXIS.into_iter().enumerate() {
            let mse = mse_over_trials(opts, stream_id(&[1300, mi, ei]), |rng| {
                let (population, truth) = build_population(Dataset::Taxi, opts.n, 0.25, rng);
                let cfg = dap_config(opts, eps, Scheme::EmfStar);
                let mean = if mi == 0 {
                    Dap::new(cfg, PiecewiseMechanism::new)
                        .expect("valid config")
                        .run(&population, &attack, rng)
                        .expect("valid run")
                        .mean
                } else {
                    Dap::new(cfg, Duchi::new)
                        .expect("valid config")
                        .run(&population, &attack, rng)
                        .expect("valid run")
                        .mean
                };
                (mean, truth)
            });
            print!(" {:>10}", sci(mse));
        }
        println!();
    }
    // Reference: undefended averages.
    for (mi, label) in ["PM + Ostrich", "Duchi + Ostrich"].into_iter().enumerate() {
        print!("{:<22}", label);
        for (ei, eps) in EPS_AXIS.into_iter().enumerate() {
            let mse = mse_over_trials(opts, stream_id(&[1310, mi, ei]), |rng| {
                use dap_estimation::stats::mean;
                use dap_ldp::NumericMechanism;
                let (population, truth) = build_population(Dataset::Taxi, opts.n, 0.25, rng);
                let reports: Vec<f64> = if mi == 0 {
                    let mech = PiecewiseMechanism::new(dap_ldp::Epsilon::of(eps));
                    let mut r: Vec<f64> =
                        population.honest.iter().map(|&v| mech.perturb(v, rng)).collect();
                    r.extend(dap_attack::Attack::reports(&attack, population.byzantine, &mech, rng));
                    r
                } else {
                    let mech = Duchi::new(dap_ldp::Epsilon::of(eps));
                    let mut r: Vec<f64> =
                        population.honest.iter().map(|&v| mech.perturb(v, rng)).collect();
                    r.extend(dap_attack::Attack::reports(&attack, population.byzantine, &mech, rng));
                    r
                };
                (mean(&reports), truth)
            });
            print!(" {:>10}", sci(mse));
        }
        println!();
    }
    println!("\nexpected shape: Duchi's bounded two-atom domain shrinks the undefended bias; DAP narrows the gap on PM.\n");
}

/// Budget-split ablation for the §IV baseline protocol (Taxi, γ = 0.25,
/// ε = 1, Poi[C/2, C]).
pub fn run_split(opts: &ExpOptions) {
    println!("== Ablation: baseline protocol budget split (Taxi, gamma = 0.25, eps = 1) ==");
    const ALPHAS: [f64; 4] = [1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0];
    print!("{:<22}", "attacker");
    for alpha in ALPHAS {
        print!(" {:>12}", format!("a={alpha}"));
    }
    println!();
    for (mode_i, mode) in ["naive", "probing-aware"].into_iter().enumerate() {
        print!("{:<22}", mode);
        for (ai, alpha) in ALPHAS.into_iter().enumerate() {
            let mse = mse_over_trials(opts, stream_id(&[1200, mode_i, ai]), |rng| {
                let (population, truth) = build_population(Dataset::Taxi, opts.n, 0.25, rng);
                let cfg = BaselineConfig {
                    alpha,
                    max_d_out: opts.max_d_out,
                    ..BaselineConfig::with_eps(1.0)
                };
                let proto =
                    BaselineProtocol::new(cfg, PiecewiseMechanism::new).expect("valid config");
                let attack = PoiRange::TopHalf.attack();
                let out = if mode == "naive" {
                    proto.run(&population, &attack, rng)
                } else {
                    proto.run_with_evading_attacker(&population, &attack, 0.0, rng)
                }
                .expect("valid run");
                (out.mean, truth)
            });
            print!(" {:>12}", sci(mse));
        }
        println!();
    }
    println!("\nexpected shape: naive rows flat-ish; probing-aware rows much worse everywhere — no split fixes the baseline's flaw (hence DAP).\n");
}
