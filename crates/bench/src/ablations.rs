//! Ablations for the design decisions DESIGN.md calls out:
//!
//! * `ablation-weights` — Algorithm 5's printed weight rule vs the Theorem 6
//!   proof's rule vs uniform weights;
//! * `ablation-split` — the baseline protocol's ε_α/ε budget split, with
//!   naive and probing-aware attackers;
//! * `ablation-mechanism` — PM-DAP vs Duchi-DAP under the same coalition
//!   (§V-D's mechanism-generality claim).

use crate::cell::{AttackSpec, Cell, CellKind, ExperimentId, MechKind, SchemeSet};
use crate::common::{sci, ExpOptions, PoiRange};
use crate::engine::{run_cells, ResultMap};
use crate::{out, outln};
use dap_core::{Scheme, Weighting};
use dap_datasets::Dataset;

/// ε axis shared by the ablations.
pub const EPS_AXIS: [f64; 4] = [0.25, 0.5, 1.0, 2.0];

/// The weighting rules under comparison, with their row labels.
pub const WEIGHTINGS: [(&str, Weighting); 3] = [
    ("Algorithm5", Weighting::AlgorithmFive),
    ("ProofOptimal", Weighting::ProofOptimal),
    ("Uniform", Weighting::Uniform),
];

/// Budget-split α axis.
pub const ALPHAS: [f64; 4] = [1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0];

fn weights_cell(weighting: Weighting, eps: f64) -> Cell {
    Cell::new(
        ExperimentId::AblationWeights,
        "",
        CellKind::PmMse {
            dataset: Dataset::Taxi,
            gamma: 0.25,
            eps,
            attack: AttackSpec::Poi(PoiRange::TopHalf),
            schemes: SchemeSet::One(Scheme::EmfStar),
            defenses: false,
            weighting,
            mechanism: MechKind::Pm,
        },
    )
}

/// Weight-rule ablation cells.
pub fn weights_cells(_opts: &ExpOptions) -> Vec<Cell> {
    WEIGHTINGS
        .into_iter()
        .flat_map(|(_, w)| EPS_AXIS.into_iter().map(move |eps| weights_cell(w, eps)))
        .collect()
}

/// Weight-rule ablation table (Taxi, Poi[C/2, C], γ = 0.25, DAP_EMF*).
pub fn weights_render(_opts: &ExpOptions, r: &ResultMap) -> String {
    let mut s = String::new();
    outln!(s, "== Ablation: inter-group weighting rule (Taxi, Poi[C/2,C], gamma = 0.25, DAP_EMF*) ==");
    out!(s, "{:<15}", "weighting");
    for eps in EPS_AXIS {
        out!(s, " {:>10}", format!("eps={eps}"));
    }
    outln!(s);
    for (label, weighting) in WEIGHTINGS {
        out!(s, "{:<15}", label);
        for eps in EPS_AXIS {
            out!(s, " {:>10}", sci(r.get(&weights_cell(weighting, eps))[0]));
        }
        outln!(s);
    }
    outln!(s, "\nnote: the paper's Algorithm 5 line 3 and its Theorem 6 proof derive different weights; this table measures the gap.\n");
    s
}

fn mechanism_cell(mechanism: MechKind, eps: f64) -> Cell {
    Cell::new(
        ExperimentId::AblationMechanism,
        "",
        CellKind::PmMse {
            dataset: Dataset::Taxi,
            gamma: 0.25,
            eps,
            attack: AttackSpec::PointTop,
            schemes: SchemeSet::One(Scheme::EmfStar),
            defenses: false,
            weighting: Weighting::AlgorithmFive,
            mechanism,
        },
    )
}

fn raw_mean_cell(mechanism: MechKind, eps: f64) -> Cell {
    Cell::new(
        ExperimentId::AblationMechanism,
        "",
        CellKind::RawMean {
            dataset: Dataset::Taxi,
            gamma: 0.25,
            eps,
            attack: AttackSpec::PointTop,
            mechanism,
        },
    )
}

/// Mechanism-generality ablation cells.
pub fn mechanism_cells(_opts: &ExpOptions) -> Vec<Cell> {
    let mut cells = Vec::new();
    for mech in [MechKind::Pm, MechKind::Duchi] {
        for eps in EPS_AXIS {
            cells.push(mechanism_cell(mech, eps));
        }
    }
    for mech in [MechKind::Pm, MechKind::Duchi] {
        for eps in EPS_AXIS {
            cells.push(raw_mean_cell(mech, eps));
        }
    }
    cells
}

/// Mechanism ablation: the same coalition and budget, PM vs Duchi as the
/// underlying mechanism (Taxi, γ = 0.25, point attack at the domain top —
/// the strongest attack both domains admit).
pub fn mechanism_render(_opts: &ExpOptions, r: &ResultMap) -> String {
    let mut s = String::new();
    outln!(s, "== Ablation: underlying mechanism (Taxi, gamma = 0.25, point attack at DR) ==");
    out!(s, "{:<22}", "pipeline");
    for eps in EPS_AXIS {
        out!(s, " {:>10}", format!("eps={eps}"));
    }
    outln!(s);
    for (mech, label) in [(MechKind::Pm, "PM + DAP_EMF*"), (MechKind::Duchi, "Duchi + DAP_EMF*")] {
        out!(s, "{:<22}", label);
        for eps in EPS_AXIS {
            out!(s, " {:>10}", sci(r.get(&mechanism_cell(mech, eps))[0]));
        }
        outln!(s);
    }
    // Reference: undefended averages.
    for (mech, label) in [(MechKind::Pm, "PM + Ostrich"), (MechKind::Duchi, "Duchi + Ostrich")] {
        out!(s, "{:<22}", label);
        for eps in EPS_AXIS {
            out!(s, " {:>10}", sci(r.get(&raw_mean_cell(mech, eps))[0]));
        }
        outln!(s);
    }
    outln!(s, "\nexpected shape: Duchi's bounded two-atom domain shrinks the undefended bias; DAP narrows the gap on PM.\n");
    s
}

fn split_cell(probing: bool, alpha: f64) -> Cell {
    Cell::new(
        ExperimentId::AblationSplit,
        "",
        CellKind::BaselineSplit { dataset: Dataset::Taxi, gamma: 0.25, eps: 1.0, alpha, probing },
    )
}

/// Budget-split ablation cells.
pub fn split_cells(_opts: &ExpOptions) -> Vec<Cell> {
    [false, true]
        .into_iter()
        .flat_map(|probing| ALPHAS.into_iter().map(move |alpha| split_cell(probing, alpha)))
        .collect()
}

/// Budget-split ablation for the §IV baseline protocol (Taxi, γ = 0.25,
/// ε = 1, Poi[C/2, C]).
pub fn split_render(_opts: &ExpOptions, r: &ResultMap) -> String {
    let mut s = String::new();
    outln!(s, "== Ablation: baseline protocol budget split (Taxi, gamma = 0.25, eps = 1) ==");
    out!(s, "{:<22}", "attacker");
    for alpha in ALPHAS {
        out!(s, " {:>12}", format!("a={alpha}"));
    }
    outln!(s);
    for (probing, label) in [(false, "naive"), (true, "probing-aware")] {
        out!(s, "{:<22}", label);
        for alpha in ALPHAS {
            out!(s, " {:>12}", sci(r.get(&split_cell(probing, alpha))[0]));
        }
        outln!(s);
    }
    outln!(s, "\nexpected shape: naive rows flat-ish; probing-aware rows much worse everywhere — no split fixes the baseline's flaw (hence DAP).\n");
    s
}

/// Enumerate → execute → print (one per ablation id).
pub fn run_weights(opts: &ExpOptions) {
    let cells = weights_cells(opts);
    let results = run_cells(opts, &cells);
    print!("{}", weights_render(opts, &ResultMap::from_results(&results)));
}

/// See [`run_weights`].
pub fn run_split(opts: &ExpOptions) {
    let cells = split_cells(opts);
    let results = run_cells(opts, &cells);
    print!("{}", split_render(opts, &ResultMap::from_results(&results)));
}

/// See [`run_weights`].
pub fn run_mechanism(opts: &ExpOptions) {
    let cells = mechanism_cells(opts);
    let results = run_cells(opts, &cells);
    print!("{}", mechanism_render(opts, &ResultMap::from_results(&results)));
}
