//! Process-wide perturbed-report cache for the evaluation engine.
//!
//! Perturbation is the second-largest cost in the figure drivers after EM:
//! every cell re-perturbs its (already cached) population even though the
//! honest reports depend only on `(population, mechanism, ε)` — never on
//! the attack, the defense, or the scheme under evaluation. This cache
//! memoizes the two honest-report shapes the engine consumes:
//!
//! * **flat batches** — every honest user perturbs once at full ε (the
//!   defense rows, probes, and single-batch estimators), and
//! * **grouped protocol reports** — [`dap_core::PreparedReports`]: the
//!   shuffled [`dap_core::GroupPlan`] plus each honest user's `k_t`
//!   reports at `ε_t` (the DAP/SW-DAP cells, replayed through
//!   [`dap_core::Dap::run_schemes_prepared`]).
//!
//! The determinism contract mirrors [`dap_datasets::PopulationCache`]: the
//! generation RNG stream is derived from the key alone — `(dataset,
//! domain, n, γ, seed, trial, mechanism, ε[, ε₀])` — never from a caller's
//! stream or execution order, so
//!
//! * reports are **identical whether or not the cache is warm** (a warm
//!   `experiments fig7` rerun is byte-identical to a cold one), and
//! * sharded runs are bit-identical to single-process runs: each shard
//!   regenerates exactly the report sets its cells need.
//!
//! The coalition's reports are perturbed reports too: they depend only on
//! `(population key, attack spec, mechanism, ε[, ε₀])`, and cell reps are
//! already bit-identical re-runs by the contract above, so "fresh per rep"
//! buys no statistical independence — it only re-runs the (gamma/normal)
//! samplers. The cache therefore also memoizes **poison batches** — flat
//! coalition draws and per-group protocol batches
//! ([`dap_core::Dap::poison_batches`]) — keyed by the honest coordinate
//! plus [`AttackSpec::key_words`], with the generation stream derived from
//! that extended key.
//!
//! Entries are evicted least-recently-used beyond [`DEFAULT_CAPACITY`]
//! (override with `DAP_REPORT_CACHE_CAP`); hit/miss/eviction counters are
//! exposed through [`ReportCache::stats`] and printed by `experiments all`
//! next to the population-cache counters.

use crate::cell::AttackSpec;
use crate::common::perturb_all;
use dap_core::{Dap, DapConfig, PreparedReports, Scheme};
use dap_datasets::cache::Domain;
use dap_datasets::{Dataset, PopulationCache};
use dap_estimation::rng::derive;
use dap_ldp::{Duchi, Epsilon, PiecewiseMechanism, SquareWave};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Default entry cap. At the default scale (N = 20 000) a flat entry is
/// ~160 kB and a grouped entry ~320 kB; a full `experiments all` sweep
/// touches a few hundred distinct `(population, mechanism, ε)` coordinates,
/// so 256 holds the hot set in tens of MB. At `--paper-scale` entries are
/// 50× larger — lower `DAP_REPORT_CACHE_CAP` if memory-bound.
pub const DEFAULT_CAPACITY: usize = 256;

/// Which mechanism perturbed a cached report set. Engine-level mirror of
/// the mechanism constructors; part of the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReportMech {
    /// Piecewise Mechanism.
    Pm,
    /// Duchi et al.'s mechanism.
    Duchi,
    /// Square Wave.
    Sw,
}

/// The population coordinate a report set was perturbed from — exactly the
/// [`PopulationCache`] key, so one `(opts, cell, trial)` names both the
/// population and its report sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReportCoord {
    /// Source dataset.
    pub dataset: Dataset,
    /// Input-domain normalization.
    pub domain: Domain,
    /// Total population size (honest + Byzantine).
    pub n: usize,
    /// Coalition proportion γ.
    pub gamma: f64,
    /// Experiment base seed.
    pub seed: u64,
    /// Trial-stream index.
    pub trial: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    dataset: Dataset,
    domain: Domain,
    n: usize,
    gamma_bits: u64,
    seed: u64,
    trial: u64,
    mech: ReportMech,
    eps_bits: u64,
    /// `None` for a flat batch; `Some(ε₀ bits)` for grouped reports (the
    /// plan depends on ε₀, so it is part of the coordinate).
    grouped: Option<u64>,
    /// `None` for honest entries; `Some(attack words)` for poison entries
    /// (see [`AttackSpec::key_words`]).
    attack: Option<[u64; 3]>,
}

#[derive(Debug, Clone)]
enum Entry {
    Flat(Arc<Vec<f64>>),
    Grouped(Arc<PreparedReports>),
    /// The coalition's flat draws for one `(coordinate, attack)` pair.
    PoisonFlat(Arc<Vec<f64>>),
    /// The coalition's per-group protocol batches, in group order.
    PoisonGrouped(Arc<Vec<Vec<f64>>>),
}

/// Cumulative counters since process start (or the last
/// [`ReportCache::reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReportCacheStats {
    /// Requests served from memory.
    pub hits: u64,
    /// Requests that had to perturb.
    pub misses: u64,
    /// Entries dropped to stay under the capacity.
    pub evictions: u64,
}

/// A bounded, thread-safe memo of perturbed honest-report sets. See the
/// module docs for the determinism contract.
pub struct ReportCache {
    map: Mutex<HashMap<Key, (Entry, u64)>>,
    clock: AtomicU64,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ReportCache {
    /// An empty cache holding at most `capacity` report sets.
    pub fn new(capacity: usize) -> Self {
        ReportCache {
            map: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(0),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The process-wide cache (capacity from `DAP_REPORT_CACHE_CAP`,
    /// default [`DEFAULT_CAPACITY`]).
    pub fn global() -> &'static ReportCache {
        static GLOBAL: OnceLock<ReportCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cap = std::env::var("DAP_REPORT_CACHE_CAP")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_CAPACITY);
            ReportCache::new(cap)
        })
    }

    /// The honest users' single-batch reports at full ε under `mech`,
    /// perturbed on first use. Callers append the coalition's reports from
    /// their own trial stream.
    pub fn flat_batch(
        &self,
        coord: &ReportCoord,
        mech: ReportMech,
        eps: f64,
    ) -> Arc<Vec<f64>> {
        let key = key_of(coord, mech, eps, None);
        if let Some(Entry::Flat(found)) = self.lookup(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return found;
        }
        // Perturb outside the lock; a concurrent miss on the same key
        // produces byte-identical reports, so whichever insert wins is
        // immaterial.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(generate_flat(coord, mech, eps));
        self.insert(key, Entry::Flat(Arc::clone(&fresh)));
        fresh
    }

    /// The protocol's stages 1–2 for a population — shuffled plan plus
    /// per-group honest reports — frozen for replay through
    /// [`Dap::run_schemes_prepared`]. `ε₀` must match the replaying
    /// session's config (the replay rejects mismatches).
    pub fn prepared(
        &self,
        coord: &ReportCoord,
        mech: ReportMech,
        eps: f64,
        eps0: f64,
    ) -> Arc<PreparedReports> {
        let key = key_of(coord, mech, eps, Some(eps0.to_bits()));
        if let Some(Entry::Grouped(found)) = self.lookup(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return found;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(generate_grouped(coord, mech, eps, eps0));
        self.insert(key, Entry::Grouped(Arc::clone(&fresh)));
        fresh
    }

    /// The coalition's single-batch reports at full ε under `mech` for
    /// `spec` — the poison half a flat cell appends to
    /// [`ReportCache::flat_batch`]. Drawn from a stream derived from the
    /// extended key, so the draws are a pure function of
    /// `(coordinate, mechanism, ε, attack)`.
    pub fn poison_flat(
        &self,
        coord: &ReportCoord,
        mech: ReportMech,
        eps: f64,
        spec: AttackSpec,
    ) -> Arc<Vec<f64>> {
        let key = poison_key_of(coord, mech, eps, None, spec);
        if let Some(Entry::PoisonFlat(found)) = self.lookup(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return found;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fresh = Arc::new(generate_poison_flat(coord, mech, eps, spec, &key));
        self.insert(key, Entry::PoisonFlat(Arc::clone(&fresh)));
        fresh
    }

    /// The coalition's per-group protocol batches for `spec` against this
    /// coordinate's [`ReportCache::prepared`] entry (which it fetches — and
    /// warms — itself), ready for
    /// [`dap_core::Dap::run_schemes_prepared_with`].
    pub fn poison_grouped(
        &self,
        coord: &ReportCoord,
        mech: ReportMech,
        eps: f64,
        eps0: f64,
        spec: AttackSpec,
    ) -> Arc<Vec<Vec<f64>>> {
        let key = poison_key_of(coord, mech, eps, Some(eps0.to_bits()), spec);
        if let Some(Entry::PoisonGrouped(found)) = self.lookup(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return found;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let prepared = self.prepared(coord, mech, eps, eps0);
        let fresh = Arc::new(generate_poison_grouped(coord, mech, eps, eps0, spec, &prepared, &key));
        self.insert(key, Entry::PoisonGrouped(Arc::clone(&fresh)));
        fresh
    }

    fn lookup(&self, key: &Key) -> Option<Entry> {
        let mut map = self.map.lock().expect("report cache poisoned");
        map.get_mut(key).map(|(entry, stamp)| {
            *stamp = self.clock.fetch_add(1, Ordering::Relaxed);
            entry.clone()
        })
    }

    fn insert(&self, key: Key, fresh: Entry) {
        let mut map = self.map.lock().expect("report cache poisoned");
        if map.contains_key(&key) {
            return;
        }
        if map.len() >= self.capacity {
            if let Some(oldest) =
                map.iter().min_by_key(|(_, (_, stamp))| *stamp).map(|(k, _)| *k)
            {
                map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.insert(key, (fresh, self.clock.fetch_add(1, Ordering::Relaxed)));
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ReportCacheStats {
        ReportCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters (entries stay).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Drops every entry (counters stay) — used by perf harnesses that
    /// must time cold runs.
    pub fn clear(&self) {
        self.map.lock().expect("report cache poisoned").clear();
    }

    /// Number of resident report sets.
    pub fn len(&self) -> usize {
        self.map.lock().expect("report cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn key_of(coord: &ReportCoord, mech: ReportMech, eps: f64, grouped: Option<u64>) -> Key {
    Key {
        dataset: coord.dataset,
        domain: coord.domain,
        n: coord.n,
        gamma_bits: coord.gamma.to_bits(),
        seed: coord.seed,
        trial: coord.trial,
        mech,
        eps_bits: eps.to_bits(),
        grouped,
        attack: None,
    }
}

fn poison_key_of(
    coord: &ReportCoord,
    mech: ReportMech,
    eps: f64,
    grouped: Option<u64>,
    spec: AttackSpec,
) -> Key {
    Key { attack: Some(spec.key_words()), ..key_of(coord, mech, eps, grouped) }
}

/// The generation stream for a key — FNV-1a over the coordinate with a tag
/// word distinct from both the cell streams and the population cache's, so
/// the three stream families never collide by construction.
fn generation_stream(key: &Key) -> u64 {
    let words = [
        0x7265_7065_7274_7262, // "report" tag
        key.dataset as u64,
        key.domain as u64,
        key.n as u64,
        key.gamma_bits,
        key.trial,
        key.mech as u64,
        key.eps_bits,
        key.grouped.map_or(u64::MAX, |b| b.rotate_left(1)),
    ];
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            acc = (acc ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
    }
    // Poison entries fold the attack words in on top; honest entries hash
    // exactly as they did before poison caching existed, keeping their
    // streams (and therefore every cached honest byte) stable.
    if let Some(attack) = key.attack {
        for w in attack {
            for b in w.to_le_bytes() {
                acc = (acc ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
        }
        acc = acc.rotate_left(17) ^ 0x6174_7461_636b_7073; // "attack" tag
    }
    acc
}

fn population_of(coord: &ReportCoord) -> Arc<dap_datasets::cache::SampledPopulation> {
    PopulationCache::global().population(
        coord.dataset,
        coord.domain,
        coord.n,
        coord.gamma,
        coord.seed,
        coord.trial,
    )
}

fn generate_flat(coord: &ReportCoord, mech: ReportMech, eps: f64) -> Vec<f64> {
    let sp = population_of(coord);
    let key = key_of(coord, mech, eps, None);
    let mut rng = derive(coord.seed, generation_stream(&key));
    match mech {
        ReportMech::Pm => perturb_all(&PiecewiseMechanism::new(Epsilon::of(eps)), &sp.honest, &mut rng),
        ReportMech::Duchi => perturb_all(&Duchi::new(Epsilon::of(eps)), &sp.honest, &mut rng),
        ReportMech::Sw => perturb_all(&SquareWave::new(Epsilon::of(eps)), &sp.honest, &mut rng),
    }
}

fn generate_grouped(
    coord: &ReportCoord,
    mech: ReportMech,
    eps: f64,
    eps0: f64,
) -> PreparedReports {
    let sp = population_of(coord);
    let key = key_of(coord, mech, eps, Some(eps0.to_bits()));
    let mut rng = derive(coord.seed, generation_stream(&key));
    // Only ε/ε₀ and the mechanism shape the prepared reports; the scheme
    // and estimation knobs are finalize-time concerns.
    let cfg = DapConfig { eps0, ..DapConfig::paper_default(eps, Scheme::Emf) };
    match mech {
        ReportMech::Pm => Dap::new(cfg, PiecewiseMechanism::new)
            .expect("valid config")
            .prepare_reports(&sp.honest, sp.byzantine, &mut rng)
            .expect("non-empty population"),
        ReportMech::Duchi => Dap::new(cfg, Duchi::new)
            .expect("valid config")
            .prepare_reports(&sp.honest, sp.byzantine, &mut rng)
            .expect("non-empty population"),
        ReportMech::Sw => Dap::new(cfg, SquareWave::new)
            .expect("valid config")
            .prepare_reports(&sp.honest, sp.byzantine, &mut rng)
            .expect("non-empty population"),
    }
}

fn generate_poison_flat(
    coord: &ReportCoord,
    mech: ReportMech,
    eps: f64,
    spec: AttackSpec,
    key: &Key,
) -> Vec<f64> {
    let sp = population_of(coord);
    let mut rng = derive(coord.seed, generation_stream(key));
    let attack = spec.build();
    match mech {
        ReportMech::Pm => {
            attack.reports(sp.byzantine, &PiecewiseMechanism::new(Epsilon::of(eps)), &mut rng)
        }
        ReportMech::Duchi => attack.reports(sp.byzantine, &Duchi::new(Epsilon::of(eps)), &mut rng),
        ReportMech::Sw => attack.reports(sp.byzantine, &SquareWave::new(Epsilon::of(eps)), &mut rng),
    }
}

fn generate_poison_grouped(
    coord: &ReportCoord,
    mech: ReportMech,
    eps: f64,
    eps0: f64,
    spec: AttackSpec,
    prepared: &PreparedReports,
    key: &Key,
) -> Vec<Vec<f64>> {
    let mut rng = derive(coord.seed, generation_stream(key));
    let attack = spec.build();
    // Poison batches depend on the plan (frozen in `prepared`), the
    // per-group mechanisms, and the attack — the same minimal config that
    // shaped the prepared entry reproduces them.
    let cfg = DapConfig { eps0, ..DapConfig::paper_default(eps, Scheme::Emf) };
    match mech {
        ReportMech::Pm => Dap::new(cfg, PiecewiseMechanism::new)
            .expect("valid config")
            .poison_batches(prepared, attack.as_ref(), &mut rng)
            .expect("prepared matches config"),
        ReportMech::Duchi => Dap::new(cfg, Duchi::new)
            .expect("valid config")
            .poison_batches(prepared, attack.as_ref(), &mut rng)
            .expect("prepared matches config"),
        ReportMech::Sw => Dap::new(cfg, SquareWave::new)
            .expect("valid config")
            .poison_batches(prepared, attack.as_ref(), &mut rng)
            .expect("prepared matches config"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord(trial: u64) -> ReportCoord {
        ReportCoord {
            dataset: Dataset::Taxi,
            domain: Domain::Signed,
            n: 400,
            gamma: 0.25,
            seed: 7,
            trial,
        }
    }

    #[test]
    fn hit_returns_the_same_reports() {
        let cache = ReportCache::new(8);
        let a = cache.flat_batch(&coord(0), ReportMech::Pm, 0.5);
        let b = cache.flat_batch(&coord(0), ReportMech::Pm, 0.5);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), ReportCacheStats { hits: 1, misses: 1, evictions: 0 });
        assert_eq!(a.len(), 300, "one report per honest user");
    }

    #[test]
    fn values_are_a_pure_function_of_the_key() {
        // Two caches, different access orders, same key → identical bits.
        let warm = ReportCache::new(8);
        warm.flat_batch(&coord(1), ReportMech::Pm, 0.25);
        warm.prepared(&coord(0), ReportMech::Pm, 0.5, 1.0 / 16.0);
        let via_warm = warm.flat_batch(&coord(0), ReportMech::Pm, 0.5);
        let cold = ReportCache::new(8);
        let via_cold = cold.flat_batch(&coord(0), ReportMech::Pm, 0.5);
        assert_eq!(
            via_warm.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            via_cold.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let prep_warm = warm.prepared(&coord(0), ReportMech::Pm, 0.5, 1.0 / 16.0);
        let prep_cold = cold.prepared(&coord(0), ReportMech::Pm, 0.5, 1.0 / 16.0);
        assert_eq!(*prep_warm, *prep_cold);
    }

    #[test]
    fn distinct_coordinates_get_distinct_streams() {
        let cache = ReportCache::new(16);
        let base = cache.flat_batch(&coord(0), ReportMech::Pm, 0.5);
        let other_eps = cache.flat_batch(&coord(0), ReportMech::Pm, 1.0);
        assert_ne!(*base, *other_eps, "ε must shape the stream");
        let other_mech = cache.flat_batch(&coord(0), ReportMech::Duchi, 0.5);
        assert_ne!(*base, *other_mech, "mechanisms must differ");
        let other_trial = cache.flat_batch(&coord(1), ReportMech::Pm, 0.5);
        assert_ne!(*base, *other_trial, "trial streams must differ");
    }

    #[test]
    fn grouped_entries_track_eps0() {
        let cache = ReportCache::new(8);
        let a = cache.prepared(&coord(0), ReportMech::Pm, 0.5, 1.0 / 16.0);
        let b = cache.prepared(&coord(0), ReportMech::Pm, 0.5, 1.0 / 8.0);
        assert_ne!(a.plan.assignment.len(), b.plan.assignment.len());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn flat_and_grouped_share_the_lru_budget() {
        let cache = ReportCache::new(2);
        cache.flat_batch(&coord(0), ReportMech::Pm, 0.5);
        cache.prepared(&coord(0), ReportMech::Pm, 0.5, 1.0 / 16.0);
        // Touch the flat entry so the grouped one is the LRU victim.
        cache.flat_batch(&coord(0), ReportMech::Pm, 0.5);
        cache.flat_batch(&coord(1), ReportMech::Pm, 0.5);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        let before = cache.stats().misses;
        cache.flat_batch(&coord(0), ReportMech::Pm, 0.5);
        assert_eq!(cache.stats().misses, before, "flat survivor still resident");
        cache.prepared(&coord(0), ReportMech::Pm, 0.5, 1.0 / 16.0);
        assert_eq!(cache.stats().misses, before + 1, "grouped victim evicted");
    }

    #[test]
    fn clear_drops_entries_but_not_counters() {
        let cache = ReportCache::new(4);
        cache.flat_batch(&coord(0), ReportMech::Duchi, 0.5);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
        cache.reset_stats();
        assert_eq!(cache.stats(), ReportCacheStats::default());
    }
}
