//! The declarative cell model: every figure/table/ablation of the paper's
//! evaluation is a pure function that *enumerates* [`Cell`] values.
//!
//! A cell is one executable experiment coordinate — typed parameters
//! (dataset, ε, γ, poison range, scheme set, mechanism, …) plus the
//! experiment/panel it renders into. Its RNG stream id is derived from the
//! coordinate alone ([`Cell::stream`]), never from enumeration or
//! execution order, which is what makes sharded execution exact: any
//! subset of the cell list computes bit-identical values to a full run.
//!
//! The layers around this module:
//! * [`crate::engine`] executes any cell list over
//!   [`dap_core::parallel_map`] and folds per-trial outputs into typed
//!   [`crate::engine::CellResult`] records;
//! * [`crate::results`] serializes result sets to a stable JSON schema and
//!   merges shards;
//! * each experiment module (`fig4` … `table1`, `ablations`) contributes
//!   its enumeration (`cells`) and its stdout renderer (`render`).

use crate::common::{ExpOptions, PoiRange};
use dap_attack::{
    Anchor, Attack, BetaShapedAttack, EvasionAttack, GaussianAttack, InputManipulationAttack,
    NoAttack, PointAttack, UniformAttack,
};
use dap_core::{Scheme, Weighting};
use dap_datasets::Dataset;

/// Identifier of one paper artifact (subcommand of `experiments`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentId {
    Fig4,
    Table1,
    Fig5,
    Fig6,
    Fig7,
    Fig8,
    Fig9,
    Fig10,
    AblationWeights,
    AblationSplit,
    AblationMechanism,
}

impl ExperimentId {
    /// Every experiment, in `experiments all` execution order.
    pub const ALL: [ExperimentId; 11] = [
        ExperimentId::Fig4,
        ExperimentId::Table1,
        ExperimentId::Fig5,
        ExperimentId::Fig6,
        ExperimentId::Fig7,
        ExperimentId::Fig8,
        ExperimentId::Fig9,
        ExperimentId::Fig10,
        ExperimentId::AblationWeights,
        ExperimentId::AblationSplit,
        ExperimentId::AblationMechanism,
    ];

    /// The subcommand name.
    pub fn name(self) -> &'static str {
        match self {
            ExperimentId::Fig4 => "fig4",
            ExperimentId::Table1 => "table1",
            ExperimentId::Fig5 => "fig5",
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig7 => "fig7",
            ExperimentId::Fig8 => "fig8",
            ExperimentId::Fig9 => "fig9",
            ExperimentId::Fig10 => "fig10",
            ExperimentId::AblationWeights => "ablation-weights",
            ExperimentId::AblationSplit => "ablation-split",
            ExperimentId::AblationMechanism => "ablation-mechanism",
        }
    }

    /// Parses a subcommand name.
    pub fn from_name(name: &str) -> Option<ExperimentId> {
        ExperimentId::ALL.into_iter().find(|e| e.name() == name)
    }

    /// Enumerates this experiment's cells (the spec layer).
    pub fn cells(self, opts: &ExpOptions) -> Vec<Cell> {
        match self {
            ExperimentId::Fig4 => crate::fig4::cells(opts),
            ExperimentId::Table1 => crate::table1::cells(opts),
            ExperimentId::Fig5 => crate::fig5::cells(opts),
            ExperimentId::Fig6 => crate::fig6::cells(opts),
            ExperimentId::Fig7 => crate::fig7::cells(opts),
            ExperimentId::Fig8 => crate::fig8::cells(opts),
            ExperimentId::Fig9 => crate::fig9::cells(opts),
            ExperimentId::Fig10 => crate::fig10::cells(opts),
            ExperimentId::AblationWeights => crate::ablations::weights_cells(opts),
            ExperimentId::AblationSplit => crate::ablations::split_cells(opts),
            ExperimentId::AblationMechanism => crate::ablations::mechanism_cells(opts),
        }
    }

    /// Renders this experiment's stdout tables from a result map.
    pub fn render(self, opts: &ExpOptions, r: &crate::engine::ResultMap) -> String {
        match self {
            ExperimentId::Fig4 => crate::fig4::render(opts, r),
            ExperimentId::Table1 => crate::table1::render(opts, r),
            ExperimentId::Fig5 => crate::fig5::render(opts, r),
            ExperimentId::Fig6 => crate::fig6::render(opts, r),
            ExperimentId::Fig7 => crate::fig7::render(opts, r),
            ExperimentId::Fig8 => crate::fig8::render(opts, r),
            ExperimentId::Fig9 => crate::fig9::render(opts, r),
            ExperimentId::Fig10 => crate::fig10::render(opts, r),
            ExperimentId::AblationWeights => crate::ablations::weights_render(opts, r),
            ExperimentId::AblationSplit => crate::ablations::split_render(opts, r),
            ExperimentId::AblationMechanism => crate::ablations::mechanism_render(opts, r),
        }
    }
}

/// Poison-value distribution over a [`PoiRange`] (Fig. 7c, d).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoiShape {
    Uniform,
    Gaussian,
    Beta16,
    Beta61,
}

impl PoiShape {
    /// Fig. 7's column order.
    pub const ALL: [PoiShape; 4] =
        [PoiShape::Uniform, PoiShape::Gaussian, PoiShape::Beta16, PoiShape::Beta61];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            PoiShape::Uniform => "Uniform",
            PoiShape::Gaussian => "Gaussian",
            PoiShape::Beta16 => "Beta(1,6)",
            PoiShape::Beta61 => "Beta(6,1)",
        }
    }
}

/// Typed attack coordinate — resolves to a `dyn Attack` at execution time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackSpec {
    /// No coalition (false-positive panels).
    None,
    /// Uniform poison over one of the paper's four ranges.
    Poi(PoiRange),
    /// Shaped poison (Fig. 7c, d) over a range.
    Shaped(PoiShape, PoiRange),
    /// Input-manipulation attack with target `g`.
    Ima { g: f64 },
    /// Evasion attack: fraction `a` of the coalition reports decoys at
    /// −C/2, the rest poison `[C/2, C]` (Fig. 10).
    Evasion { a: f64 },
    /// Point attack at the top of the output domain
    /// (ablation-mechanism — the strongest attack both PM and Duchi admit).
    PointTop,
    /// The Square-Wave poison `Poi[1 + b/2, 1 + b]` (Fig. 8).
    SwTop,
}

impl AttackSpec {
    /// Builds the attack object.
    pub fn build(self) -> Box<dyn Attack> {
        match self {
            AttackSpec::None => Box::new(NoAttack),
            AttackSpec::Poi(range) => Box::new(range.attack()),
            AttackSpec::Shaped(shape, range) => {
                let (a, b) = range.fractions();
                let lo = if a == 0.0 { Anchor::Abs(0.0) } else { Anchor::OfUpper(a) };
                let hi = Anchor::OfUpper(b);
                match shape {
                    PoiShape::Uniform => Box::new(UniformAttack::new(lo, hi)),
                    PoiShape::Gaussian => Box::new(GaussianAttack::new(lo, hi)),
                    PoiShape::Beta16 => Box::new(BetaShapedAttack::new(1.0, 6.0, lo, hi)),
                    PoiShape::Beta61 => Box::new(BetaShapedAttack::new(6.0, 1.0, lo, hi)),
                }
            }
            AttackSpec::Ima { g } => Box::new(InputManipulationAttack { g }),
            AttackSpec::Evasion { a } => Box::new(EvasionAttack::new(
                a,
                Anchor::OfLower(0.5),
                UniformAttack::of_upper(0.5, 1.0),
            )),
            AttackSpec::PointTop => Box::new(PointAttack { value: Anchor::OfUpper(1.0) }),
            AttackSpec::SwTop => Box::new(UniformAttack::new(
                Anchor::AboveInputMax(0.5),
                Anchor::AboveInputMax(1.0),
            )),
        }
    }

    /// A stable word encoding of the attack coordinate —
    /// `[variant, param, param]` — used by the report cache both as part of
    /// the entry key and to derive the poison-generation RNG stream.
    /// Distinct specs map to distinct words; float parameters contribute
    /// their exact bit patterns.
    pub fn key_words(self) -> [u64; 3] {
        match self {
            AttackSpec::None => [0, 0, 0],
            AttackSpec::Poi(range) => [1, range as u64, 0],
            AttackSpec::Shaped(shape, range) => [2, shape as u64, range as u64],
            AttackSpec::Ima { g } => [3, g.to_bits(), 0],
            AttackSpec::Evasion { a } => [4, a.to_bits(), 0],
            AttackSpec::PointTop => [5, 0, 0],
            AttackSpec::SwTop => [6, 0, 0],
        }
    }

    /// Human/JSON label.
    pub fn label(self) -> String {
        match self {
            AttackSpec::None => "none".into(),
            AttackSpec::Poi(range) => format!("Poi{}", range.label()),
            AttackSpec::Shaped(shape, range) => format!("{}{}", shape.label(), range.label()),
            AttackSpec::Ima { g } => format!("IMA(g={g})"),
            AttackSpec::Evasion { a } => format!("Evasion(a={a})"),
            AttackSpec::PointTop => "Point(DR)".into(),
            AttackSpec::SwTop => "Poi[1+b/2,1+b]".into(),
        }
    }

    fn feed(self, h: &mut StreamHasher) {
        match self {
            AttackSpec::None => h.word(0),
            AttackSpec::Poi(range) => {
                h.word(1);
                h.word(range as u64);
            }
            AttackSpec::Shaped(shape, range) => {
                h.word(2);
                h.word(shape as u64);
                h.word(range as u64);
            }
            AttackSpec::Ima { g } => {
                h.word(3);
                h.word(g.to_bits());
            }
            AttackSpec::Evasion { a } => {
                h.word(4);
                h.word(a.to_bits());
            }
            AttackSpec::PointTop => h.word(5),
            AttackSpec::SwTop => h.word(6),
        }
    }
}

/// The underlying LDP mechanism of a protocol cell (§V-D generality).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechKind {
    Pm,
    Duchi,
}

impl MechKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            MechKind::Pm => "PM",
            MechKind::Duchi => "Duchi",
        }
    }
}

/// Which reconstruction schemes a protocol cell evaluates (all three on one
/// shared execution, or a single one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeSet {
    All,
    One(Scheme),
}

impl SchemeSet {
    /// The concrete scheme list.
    pub fn schemes(self) -> Vec<Scheme> {
        match self {
            SchemeSet::All => Scheme::ALL.to_vec(),
            SchemeSet::One(s) => vec![s],
        }
    }
}

/// The poisoned category sets of Fig. 9(c)(d).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CatPoison {
    /// Category 10 only (panel c).
    Single,
    /// Categories 10–12 (panel d).
    Triple,
}

impl CatPoison {
    /// The poisoned category indices.
    pub fn groups(self) -> &'static [usize] {
        match self {
            CatPoison::Single => &[10],
            CatPoison::Triple => &[10, 11, 12],
        }
    }
}

/// How per-trial outputs fold into the cell's final values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fold {
    /// Single deterministic-ish rep; its outputs are the values.
    Once,
    /// Mean of each variant over trials.
    Mean,
    /// `|mean over trials − target|` per variant.
    AbsErrOfMean(f64),
    /// Mean squared error against the per-trial truth, per variant.
    Mse,
}

/// The typed computation of one cell. Every variant corresponds to one
/// simulation shape that used to live inline in a figure driver; the
/// engine ([`crate::engine`]) owns the execution code.
#[derive(Debug, Clone, PartialEq)]
pub enum CellKind {
    /// Fig. 4: dataset histogram + true mean. Values: `[mean, freq × buckets]`.
    DatasetHist { dataset: Dataset, buckets: usize },
    /// Table I: `[Var(x̂|L), Var(x̂|R)]` of one (range, ε) coordinate.
    ProbeVariance { dataset: Dataset, range: PoiRange, gamma: f64, eps: f64 },
    /// Fig. 5: EMF's Byzantine-proportion estimate γ̂ from one batch.
    /// Values: `[|mean γ̂ − γ|]` when `abs_err`, else `[mean γ̂]`.
    GammaHat { dataset: Dataset, gamma: f64, eps: f64, attack: AttackSpec, abs_err: bool },
    /// PM-protocol mean-estimation MSEs: the scheme set on **one shared
    /// protocol execution**, optionally plus Ostrich and Trimming on one
    /// shared full-budget batch of the same honest values (common random
    /// numbers). Values: per-scheme MSEs `[, Ostrich, Trimming]`.
    PmMse {
        dataset: Dataset,
        gamma: f64,
        eps: f64,
        attack: AttackSpec,
        schemes: SchemeSet,
        defenses: bool,
        weighting: Weighting,
        mechanism: MechKind,
    },
    /// Undefended single-batch mean under a mechanism (ablation reference
    /// rows). Values: `[MSE]`.
    RawMean { dataset: Dataset, gamma: f64, eps: f64, attack: AttackSpec, mechanism: MechKind },
    /// The k-means-based defense on one batch. Values: `[MSE]`.
    KMeans {
        dataset: Dataset,
        gamma: f64,
        eps: f64,
        attack: AttackSpec,
        beta: f64,
        subsets: usize,
    },
    /// EMF-based IMA integration (Fig. 9b). Values: `[MSE]`.
    ImaEmf { dataset: Dataset, gamma: f64, eps: f64, g: f64 },
    /// Fig. 8(a): Wasserstein distances of the reconstructed honest
    /// distribution. Values: `[EMF, EMF*, CEMF*, Ostrich]`.
    SwWasserstein { dataset: Dataset, gamma: f64, eps: f64 },
    /// Fig. 8(b): mean `|γ̂ − γ|` under SW. Values: `[err]`.
    SwGammaErr { dataset: Dataset, gamma: f64, eps: f64 },
    /// Fig. 8(c)(d): SW-DAP scheme MSEs on one shared protocol execution.
    SwMse { dataset: Dataset, gamma: f64, eps: f64 },
    /// Fig. 8(c)(d): Ostrich/Trimming on one shared SW batch. Values:
    /// `[Ostrich, Trimming]`.
    SwDefense { dataset: Dataset, gamma: f64, eps: f64 },
    /// Fig. 9(c)(d): categorical DAP frequency-estimation MSE on COVID-19.
    CatDap { scheme: Scheme, gamma: f64, eps: f64, poison: CatPoison },
    /// Fig. 9(c)(d): the undefended categorical baseline.
    CatOstrich { gamma: f64, eps: f64, poison: CatPoison },
    /// Budget-split ablation of the §IV baseline protocol. Values: `[MSE]`.
    BaselineSplit { dataset: Dataset, gamma: f64, eps: f64, alpha: f64, probing: bool },
}

impl CellKind {
    /// Stable kind tag for stream derivation and JSON coordinates.
    pub fn kind_name(&self) -> &'static str {
        match self {
            CellKind::DatasetHist { .. } => "dataset-hist",
            CellKind::ProbeVariance { .. } => "probe-variance",
            CellKind::GammaHat { .. } => "gamma-hat",
            CellKind::PmMse { .. } => "pm-mse",
            CellKind::RawMean { .. } => "raw-mean",
            CellKind::KMeans { .. } => "kmeans",
            CellKind::ImaEmf { .. } => "ima-emf",
            CellKind::SwWasserstein { .. } => "sw-wasserstein",
            CellKind::SwGammaErr { .. } => "sw-gamma-err",
            CellKind::SwMse { .. } => "sw-mse",
            CellKind::SwDefense { .. } => "sw-defense",
            CellKind::CatDap { .. } => "cat-dap",
            CellKind::CatOstrich { .. } => "cat-ostrich",
            CellKind::BaselineSplit { .. } => "baseline-split",
        }
    }

    /// Ordered labels of the values this cell produces.
    pub fn variants(&self) -> Vec<String> {
        fn scheme_labels(set: SchemeSet) -> Vec<String> {
            set.schemes().iter().map(|s| s.label().to_string()).collect()
        }
        match self {
            CellKind::DatasetHist { buckets, .. } => {
                let mut v = vec!["mean".to_string()];
                v.extend((0..*buckets).map(|b| format!("freq{b}")));
                v
            }
            CellKind::ProbeVariance { .. } => vec!["var_left".into(), "var_right".into()],
            CellKind::GammaHat { abs_err, .. } => {
                vec![if *abs_err { "gamma_err".into() } else { "gamma_hat".into() }]
            }
            CellKind::PmMse { schemes, defenses, .. } => {
                let mut v = scheme_labels(*schemes);
                if *defenses {
                    v.push("Ostrich".into());
                    v.push("Trimming".into());
                }
                v
            }
            CellKind::RawMean { mechanism, .. } => vec![format!("{}+Ostrich", mechanism.label())],
            CellKind::KMeans { beta, .. } => vec![format!("K-means(b={beta})")],
            CellKind::ImaEmf { .. } => vec!["EMF-based".into()],
            CellKind::SwWasserstein { .. } => {
                vec!["EMF".into(), "EMF*".into(), "CEMF*".into(), "Ostrich".into()]
            }
            CellKind::SwGammaErr { .. } => vec!["gamma_err".into()],
            CellKind::SwMse { .. } => scheme_labels(SchemeSet::All),
            CellKind::SwDefense { .. } => vec!["Ostrich".into(), "Trimming".into()],
            CellKind::CatDap { scheme, .. } => vec![scheme.label().to_string()],
            CellKind::CatOstrich { .. } => vec!["Ostrich".into()],
            CellKind::BaselineSplit { probing, .. } => {
                vec![if *probing { "probing-aware".into() } else { "naive".into() }]
            }
        }
    }

    /// How many independent reps the engine runs for this cell.
    pub fn reps(&self, opts: &ExpOptions) -> usize {
        match self {
            // Single-draw artifacts (a histogram sketch, one probe table
            // entry) — matching the historical drivers, which did not
            // average these over trials.
            CellKind::DatasetHist { .. } | CellKind::ProbeVariance { .. } => 1,
            _ => opts.trials.max(1),
        }
    }

    /// The fold of per-rep outputs into final values.
    pub fn fold(&self) -> Fold {
        match self {
            CellKind::DatasetHist { .. } | CellKind::ProbeVariance { .. } => Fold::Once,
            CellKind::GammaHat { gamma, abs_err, .. } => {
                if *abs_err {
                    Fold::AbsErrOfMean(*gamma)
                } else {
                    Fold::Mean
                }
            }
            CellKind::SwWasserstein { .. }
            | CellKind::SwGammaErr { .. }
            | CellKind::CatDap { .. }
            | CellKind::CatOstrich { .. } => Fold::Mean,
            CellKind::PmMse { .. }
            | CellKind::RawMean { .. }
            | CellKind::KMeans { .. }
            | CellKind::ImaEmf { .. }
            | CellKind::SwMse { .. }
            | CellKind::SwDefense { .. }
            | CellKind::BaselineSplit { .. } => Fold::Mse,
        }
    }

    /// Flat `(key, value)` coordinates for the JSON record.
    pub fn coords(&self) -> Vec<(&'static str, String)> {
        let mut c: Vec<(&'static str, String)> = vec![("kind", self.kind_name().to_string())];
        match self {
            CellKind::DatasetHist { dataset, buckets } => {
                c.push(("dataset", dataset.label().into()));
                c.push(("buckets", buckets.to_string()));
            }
            CellKind::ProbeVariance { dataset, range, gamma, eps } => {
                c.push(("dataset", dataset.label().into()));
                c.push(("range", range.label().into()));
                c.push(("gamma", gamma.to_string()));
                c.push(("eps", eps.to_string()));
            }
            CellKind::GammaHat { dataset, gamma, eps, attack, abs_err } => {
                c.push(("dataset", dataset.label().into()));
                c.push(("gamma", gamma.to_string()));
                c.push(("eps", eps.to_string()));
                c.push(("attack", attack.label()));
                c.push(("abs_err", abs_err.to_string()));
            }
            CellKind::PmMse { dataset, gamma, eps, attack, schemes, defenses, weighting, mechanism } => {
                c.push(("dataset", dataset.label().into()));
                c.push(("gamma", gamma.to_string()));
                c.push(("eps", eps.to_string()));
                c.push(("attack", attack.label()));
                c.push((
                    "schemes",
                    match schemes {
                        SchemeSet::All => "all".into(),
                        SchemeSet::One(s) => s.label().to_string(),
                    },
                ));
                c.push(("defenses", defenses.to_string()));
                c.push(("weighting", format!("{weighting:?}")));
                c.push(("mechanism", mechanism.label().into()));
            }
            CellKind::RawMean { dataset, gamma, eps, attack, mechanism } => {
                c.push(("dataset", dataset.label().into()));
                c.push(("gamma", gamma.to_string()));
                c.push(("eps", eps.to_string()));
                c.push(("attack", attack.label()));
                c.push(("mechanism", mechanism.label().into()));
            }
            CellKind::KMeans { dataset, gamma, eps, attack, beta, subsets } => {
                c.push(("dataset", dataset.label().into()));
                c.push(("gamma", gamma.to_string()));
                c.push(("eps", eps.to_string()));
                c.push(("attack", attack.label()));
                c.push(("beta", beta.to_string()));
                c.push(("subsets", subsets.to_string()));
            }
            CellKind::ImaEmf { dataset, gamma, eps, g } => {
                c.push(("dataset", dataset.label().into()));
                c.push(("gamma", gamma.to_string()));
                c.push(("eps", eps.to_string()));
                c.push(("g", g.to_string()));
            }
            CellKind::SwWasserstein { dataset, gamma, eps }
            | CellKind::SwGammaErr { dataset, gamma, eps }
            | CellKind::SwMse { dataset, gamma, eps }
            | CellKind::SwDefense { dataset, gamma, eps } => {
                c.push(("dataset", dataset.label().into()));
                c.push(("gamma", gamma.to_string()));
                c.push(("eps", eps.to_string()));
            }
            CellKind::CatDap { scheme, gamma, eps, poison } => {
                c.push(("scheme", scheme.label().into()));
                c.push(("gamma", gamma.to_string()));
                c.push(("eps", eps.to_string()));
                c.push(("poison", format!("{:?}", poison.groups())));
            }
            CellKind::CatOstrich { gamma, eps, poison } => {
                c.push(("gamma", gamma.to_string()));
                c.push(("eps", eps.to_string()));
                c.push(("poison", format!("{:?}", poison.groups())));
            }
            CellKind::BaselineSplit { dataset, gamma, eps, alpha, probing } => {
                c.push(("dataset", dataset.label().into()));
                c.push(("gamma", gamma.to_string()));
                c.push(("eps", eps.to_string()));
                c.push(("alpha", alpha.to_string()));
                c.push(("probing", probing.to_string()));
            }
        }
        c
    }

    fn feed(&self, h: &mut StreamHasher) {
        fn feed_scheme_set(h: &mut StreamHasher, set: SchemeSet) {
            match set {
                SchemeSet::All => h.word(100),
                SchemeSet::One(s) => h.word(s as u64),
            }
        }
        match self {
            CellKind::DatasetHist { dataset, buckets } => {
                h.word(1);
                h.word(*dataset as u64);
                h.word(*buckets as u64);
            }
            CellKind::ProbeVariance { dataset, range, gamma, eps } => {
                h.word(2);
                h.word(*dataset as u64);
                h.word(*range as u64);
                h.word(gamma.to_bits());
                h.word(eps.to_bits());
            }
            CellKind::GammaHat { dataset, gamma, eps, attack, abs_err } => {
                h.word(3);
                h.word(*dataset as u64);
                h.word(gamma.to_bits());
                h.word(eps.to_bits());
                attack.feed(h);
                h.word(*abs_err as u64);
            }
            CellKind::PmMse { dataset, gamma, eps, attack, schemes, defenses, weighting, mechanism } => {
                h.word(4);
                h.word(*dataset as u64);
                h.word(gamma.to_bits());
                h.word(eps.to_bits());
                attack.feed(h);
                feed_scheme_set(h, *schemes);
                h.word(*defenses as u64);
                h.word(*weighting as u64);
                h.word(*mechanism as u64);
            }
            CellKind::RawMean { dataset, gamma, eps, attack, mechanism } => {
                h.word(5);
                h.word(*dataset as u64);
                h.word(gamma.to_bits());
                h.word(eps.to_bits());
                attack.feed(h);
                h.word(*mechanism as u64);
            }
            CellKind::KMeans { dataset, gamma, eps, attack, beta, subsets } => {
                h.word(6);
                h.word(*dataset as u64);
                h.word(gamma.to_bits());
                h.word(eps.to_bits());
                attack.feed(h);
                h.word(beta.to_bits());
                h.word(*subsets as u64);
            }
            CellKind::ImaEmf { dataset, gamma, eps, g } => {
                h.word(7);
                h.word(*dataset as u64);
                h.word(gamma.to_bits());
                h.word(eps.to_bits());
                h.word(g.to_bits());
            }
            CellKind::SwWasserstein { dataset, gamma, eps } => {
                h.word(8);
                h.word(*dataset as u64);
                h.word(gamma.to_bits());
                h.word(eps.to_bits());
            }
            CellKind::SwGammaErr { dataset, gamma, eps } => {
                h.word(9);
                h.word(*dataset as u64);
                h.word(gamma.to_bits());
                h.word(eps.to_bits());
            }
            CellKind::SwMse { dataset, gamma, eps } => {
                h.word(10);
                h.word(*dataset as u64);
                h.word(gamma.to_bits());
                h.word(eps.to_bits());
            }
            CellKind::SwDefense { dataset, gamma, eps } => {
                h.word(11);
                h.word(*dataset as u64);
                h.word(gamma.to_bits());
                h.word(eps.to_bits());
            }
            CellKind::CatDap { scheme, gamma, eps, poison } => {
                h.word(12);
                h.word(*scheme as u64);
                h.word(gamma.to_bits());
                h.word(eps.to_bits());
                h.word(*poison as u64);
            }
            CellKind::CatOstrich { gamma, eps, poison } => {
                h.word(13);
                h.word(gamma.to_bits());
                h.word(eps.to_bits());
                h.word(*poison as u64);
            }
            CellKind::BaselineSplit { dataset, gamma, eps, alpha, probing } => {
                h.word(14);
                h.word(*dataset as u64);
                h.word(gamma.to_bits());
                h.word(eps.to_bits());
                h.word(alpha.to_bits());
                h.word(*probing as u64);
            }
        }
    }
}

/// One experiment coordinate: where it renders (`experiment`, `panel`) and
/// what it computes (`kind`).
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    pub experiment: ExperimentId,
    /// Panel id within the experiment (`"a"` … or a composite like
    /// `"Taxi|[C/2,C]"`); rendering metadata, but also part of the cell
    /// coordinate fed into the stream id.
    pub panel: String,
    pub kind: CellKind,
}

impl Cell {
    /// Builds a cell.
    pub fn new(experiment: ExperimentId, panel: impl Into<String>, kind: CellKind) -> Cell {
        Cell { experiment, panel: panel.into(), kind }
    }

    /// The cell's RNG stream id — FNV-1a over the *coordinate* (experiment,
    /// panel, typed parameters). Independent of enumeration order, shard
    /// layout and thread count by construction.
    pub fn stream(&self) -> u64 {
        let mut h = StreamHasher::new();
        h.bytes(self.experiment.name().as_bytes());
        h.bytes(self.panel.as_bytes());
        self.kind.feed(&mut h);
        h.finish()
    }

    /// Ordered labels of this cell's values.
    pub fn variants(&self) -> Vec<String> {
        self.kind.variants()
    }

    /// Rep count under `opts`.
    pub fn reps(&self, opts: &ExpOptions) -> usize {
        self.kind.reps(opts)
    }
}

/// FNV-1a over little-endian words — the stable coordinate hash behind
/// [`Cell::stream`] (no `std::hash` involvement, so the ids are stable
/// across Rust versions and can be pinned in golden files).
pub struct StreamHasher(u64);

impl StreamHasher {
    /// Fresh hasher at the FNV offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> StreamHasher {
        StreamHasher(0xcbf2_9ce4_8422_2325)
    }

    /// Feeds one word.
    pub fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
    }

    /// Feeds raw bytes (length-prefixed so `"ab" + "c"` ≠ `"a" + "bc"`).
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.word(bytes.len() as u64);
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_depend_on_every_coordinate() {
        let base = Cell::new(
            ExperimentId::Fig6,
            "p",
            CellKind::PmMse {
                dataset: Dataset::Taxi,
                gamma: 0.25,
                eps: 1.0,
                attack: AttackSpec::Poi(PoiRange::TopHalf),
                schemes: SchemeSet::All,
                defenses: true,
                weighting: Weighting::AlgorithmFive,
                mechanism: MechKind::Pm,
            },
        );
        let mut other = base.clone();
        other.panel = "q".into();
        assert_ne!(base.stream(), other.stream(), "panel must feed the stream");
        let eps_changed = Cell::new(
            ExperimentId::Fig6,
            "p",
            CellKind::PmMse {
                dataset: Dataset::Taxi,
                gamma: 0.25,
                eps: 2.0,
                attack: AttackSpec::Poi(PoiRange::TopHalf),
                schemes: SchemeSet::All,
                defenses: true,
                weighting: Weighting::AlgorithmFive,
                mechanism: MechKind::Pm,
            },
        );
        assert_ne!(base.stream(), eps_changed.stream());
    }

    #[test]
    fn stream_is_stable_across_calls() {
        let cell = Cell::new(
            ExperimentId::Table1,
            "",
            CellKind::ProbeVariance {
                dataset: Dataset::Taxi,
                range: PoiRange::Full,
                gamma: 0.25,
                eps: 0.5,
            },
        );
        assert_eq!(cell.stream(), cell.stream());
    }

    #[test]
    fn experiment_names_round_trip() {
        for e in ExperimentId::ALL {
            assert_eq!(ExperimentId::from_name(e.name()), Some(e));
        }
        assert_eq!(ExperimentId::from_name("fig99"), None);
    }

    #[test]
    fn variant_counts_match_kind_shape() {
        let all = CellKind::PmMse {
            dataset: Dataset::Taxi,
            gamma: 0.25,
            eps: 1.0,
            attack: AttackSpec::Poi(PoiRange::TopHalf),
            schemes: SchemeSet::All,
            defenses: true,
            weighting: Weighting::AlgorithmFive,
            mechanism: MechKind::Pm,
        };
        assert_eq!(all.variants().len(), Scheme::ALL.len() + 2);
        let hist = CellKind::DatasetHist { dataset: Dataset::Beta25, buckets: 20 };
        assert_eq!(hist.variants().len(), 21);
    }
}
