//! The serving stack behind `experiments serve / submit / dispatch`: named
//! deployments over `dap-wire/v1` ([`dap_core::net`]).
//!
//! Three roles, all std-only TCP:
//!
//! * **Daemon** ([`ServeSpec::serve`]) — owns one [`DapSession`] built
//!   from a named deployment (mechanism, ε, user count, plan seed) and
//!   answers the full wire surface. All parties rebuild the identical
//!   grouping plan from the shared plan seed, so the hello digest
//!   handshake catches any disagreement up front. Bench daemons also
//!   execute `run-shard` frames, which is what makes a distributed
//!   `experiments all` possible.
//! * **Coordinator** ([`SubmitSpec::submit`]) — simulates the population
//!   client-side exactly as [`Dap::run_schemes`] does (same RNG stream,
//!   same per-group order), but streams each group's reports to the daemon
//!   that owns it (group `g` → daemon `g mod n`), pulls the serialized
//!   parts back, merges and finalizes locally. Because every group lives
//!   wholly on one daemon and the wire carries exact f64 bit patterns, the
//!   result is **bit-identical** to the in-process run
//!   ([`SubmitSpec::run_local`]) — pinned by `crates/bench/tests/serve.rs`
//!   and CI's `serve-smoke` job.
//! * **Shard driver** ([`dispatch`]) — sends shard `i/n` of an experiment
//!   to daemon `i`, concurrently, and merges the returned `dap-results/v1`
//!   documents with the same verification as the file-based
//!   `experiments merge`.

use crate::cell::{Cell, ExperimentId};
use crate::common::ExpOptions;
use crate::engine::run_cells_subset;
use crate::results::{codec, ResultSet, ShardInfo};
use crate::outln;
use dap_attack::{Anchor, Attack, UniformAttack};
use dap_core::codec::Fnv;
use dap_core::net::{
    serve_session_with, Deadlines, Frame, RetryPolicy, ServeOptions, ShardRequest,
    StatusCounters, WireClient, WireError,
};
use dap_core::secagg::reconstruct;
use dap_core::storage::{DurableOptions, DurableSession, FileBackend, Recovery};
use dap_core::{
    Dap, DapConfig, DapError, DapOutput, DapSession, GroupPlan, MaskedGroup, MaskedPart,
    PartGroup, Scheme, SecaggRole, SessionPart, ShareSplitter, SwDapConfig,
};
use dap_datasets::Dataset;
use dap_estimation::rng::seeded;
use dap_ldp::{Epsilon, NumericMechanism, PiecewiseMechanism, SquareWave};
use std::net::TcpListener;
use std::path::Path;
use std::time::Duration;

/// How many reports the coordinator accumulates before flushing one
/// `ingest-batch` frame (order within a group is preserved, which is all
/// exactness needs).
const STREAM_CHUNK: usize = 8192;

/// The LDP mechanism of a served deployment (what `--mech` names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMech {
    /// Piecewise Mechanism, report-sum estimation (the paper's default).
    Pm,
    /// Square Wave, histogram-band estimation (§V-D).
    Sw,
}

impl WireMech {
    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            WireMech::Pm => "pm",
            WireMech::Sw => "sw",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<WireMech> {
        match name {
            "pm" => Some(WireMech::Pm),
            "sw" => Some(WireMech::Sw),
            _ => None,
        }
    }
}

/// A named deployment: everything daemon and coordinator must agree on to
/// build compatible sessions. The agreement is *verified*, not assumed —
/// [`DapSession::state_digest`] covers the derived config, plan and grids,
/// and the wire handshake compares digests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSpec {
    /// The deployment's mechanism.
    pub mech: WireMech,
    /// Global per-user budget ε.
    pub eps: f64,
    /// Minimum group budget ε₀.
    pub eps0: f64,
    /// Total user count (honest + coalition) — fixes the plan's quotas.
    pub users: usize,
    /// Plan seed: every party rebuilds the identical [`GroupPlan`] from
    /// it (and the coordinator continues the same stream into
    /// perturbation, mirroring [`Dap::run_schemes`]).
    pub seed: u64,
    /// EMF bucket cap.
    pub max_d_out: usize,
    /// `Some(role)` runs the daemon as one of `role.k` share servers in
    /// the secret-shared tier (`serve --secagg i/k`): the session is built
    /// in masked mode, accepts only `share-batch` frames, and its journal
    /// holds only masked words. `None` is the single-aggregator tier.
    pub secagg: Option<SecaggRole>,
}

impl ServeSpec {
    /// The session configuration this deployment derives.
    pub fn session_config(&self) -> DapConfig {
        match self.mech {
            WireMech::Pm => DapConfig {
                eps0: self.eps0,
                max_d_out: self.max_d_out,
                ..DapConfig::paper_default(self.eps, Scheme::Emf)
            },
            WireMech::Sw => SwDapConfig {
                eps0: self.eps0,
                max_d_out: self.max_d_out,
                ..SwDapConfig::paper_default(self.eps, Scheme::Emf)
            }
            .session_config(),
        }
    }

    /// The grouping plan, rebuilt deterministically from the plan seed.
    pub fn plan(&self) -> GroupPlan {
        GroupPlan::build(self.users, self.eps, self.eps0, &mut seeded(self.seed))
    }

    fn pm_session(&self) -> Result<DapSession<PiecewiseMechanism>, DapError> {
        match self.secagg {
            Some(role) => DapSession::new_masked(
                self.session_config(),
                self.plan(),
                PiecewiseMechanism::new,
                role,
            ),
            None => DapSession::new(self.session_config(), self.plan(), PiecewiseMechanism::new),
        }
    }

    fn sw_session(&self) -> Result<DapSession<SquareWave>, DapError> {
        match self.secagg {
            Some(role) => {
                DapSession::new_masked(self.session_config(), self.plan(), SquareWave::new, role)
            }
            None => DapSession::new(self.session_config(), self.plan(), SquareWave::new),
        }
    }

    /// The deployment's compatibility digest (what `hello` exchanges).
    pub fn state_digest(&self) -> Result<u64, String> {
        match self.mech {
            WireMech::Pm => self.pm_session().map(|s| s.state_digest()),
            WireMech::Sw => self.sw_session().map(|s| s.state_digest()),
        }
        .map_err(|e| e.to_string())
    }

    /// Serves this deployment on `listener` until a client sends
    /// `shutdown`. Session frames hit the owned [`DapSession`]
    /// (Definition 2 enforced at the door via the typed rejections);
    /// `run-shard` frames execute experiment shards in-process.
    pub fn serve(&self, listener: TcpListener) -> Result<(), String> {
        self.serve_with(listener, ServeOptions::default())
    }

    /// [`ServeSpec::serve`] with serving knobs — an idle-connection
    /// timeout reclaims parked connections instead of holding them
    /// forever (`experiments serve --idle-timeout`).
    pub fn serve_with(&self, listener: TcpListener, options: ServeOptions) -> Result<(), String> {
        let extra = |frame: &Frame| match frame {
            Frame::RunShard { request } => Some(run_shard_frame(request)),
            _ => None,
        };
        match self.mech {
            WireMech::Pm => {
                let session = self.pm_session().map_err(|e| e.to_string())?;
                serve_session_with(listener, session, extra, options).map_err(|e| e.to_string())?;
            }
            WireMech::Sw => {
                let session = self.sw_session().map_err(|e| e.to_string())?;
                serve_session_with(listener, session, extra, options).map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }

    /// [`ServeSpec::serve`] with write-ahead durability: the session is
    /// wrapped in a [`DurableSession`] journaling to `dir`, so a daemon
    /// killed mid-submit and restarted on the same directory resumes with
    /// every acknowledged report intact (`experiments serve --journal`).
    /// Recovery is summarized on stderr; a corrupt journal refuses to
    /// serve with the typed [`DapError::Journal`] — silently dropping
    /// acknowledged data is never the default.
    ///
    /// `sync` selects the durability model: `false` survives a killed
    /// process (flushed writes live in the kernel), `true` adds an
    /// `fsync` per accepted record so acknowledged ingests also survive
    /// an OS crash or power loss (`--journal-sync`).
    pub fn serve_durable(
        &self,
        listener: TcpListener,
        dir: &Path,
        checkpoint_every: usize,
        sync: bool,
    ) -> Result<(), String> {
        self.serve_durable_with(listener, dir, checkpoint_every, sync, ServeOptions::default())
    }

    /// [`ServeSpec::serve_durable`] with serving knobs (idle timeout).
    pub fn serve_durable_with(
        &self,
        listener: TcpListener,
        dir: &Path,
        checkpoint_every: usize,
        sync: bool,
        options: ServeOptions,
    ) -> Result<(), String> {
        let extra = |frame: &Frame| match frame {
            Frame::RunShard { request } => Some(run_shard_frame(request)),
            _ => None,
        };
        let open_backend = || {
            if sync { FileBackend::open_sync(dir) } else { FileBackend::open(dir) }
                .map_err(|e| e.to_string())
        };
        let opts = DurableOptions { checkpoint_every, ..DurableOptions::default() };
        match self.mech {
            WireMech::Pm => {
                let session = self.pm_session().map_err(|e| e.to_string())?;
                let (durable, recovery) =
                    DurableSession::open(session, open_backend()?, opts).map_err(|e| e.to_string())?;
                log_recovery(dir, &recovery);
                serve_session_with(listener, durable, extra, options).map_err(|e| e.to_string())?;
            }
            WireMech::Sw => {
                let session = self.sw_session().map_err(|e| e.to_string())?;
                let (durable, recovery) =
                    DurableSession::open(session, open_backend()?, opts).map_err(|e| e.to_string())?;
                log_recovery(dir, &recovery);
                serve_session_with(listener, durable, extra, options).map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }
}

fn log_recovery(dir: &Path, recovery: &Recovery) {
    eprintln!(
        "[journal {}: checkpoint {}, {} records replayed{}{}]",
        dir.display(),
        if recovery.from_checkpoint { "restored" } else { "none" },
        recovery.replayed,
        recovery
            .torn
            .map(|at| format!(", torn tail dropped at byte {at}"))
            .unwrap_or_default(),
        recovery
            .salvaged
            .as_deref()
            .map(|s| format!(", salvaged past: {s}"))
            .unwrap_or_default(),
    );
}

/// A coordinator run: the deployment plus the simulated population it
/// streams (dataset, coalition share, data seed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmitSpec {
    /// The deployment (must match the daemons').
    pub serve: ServeSpec,
    /// Honest-value dataset.
    pub dataset: Dataset,
    /// Coalition proportion γ.
    pub gamma: f64,
    /// Seed of the honest-value draw (independent of the plan seed).
    pub data_seed: u64,
}

/// Knobs of one [`SubmitSpec::submit`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// After streaming the full population, send one extra in-range report
    /// and require the typed over-quota rejection — the observable
    /// wire-level Definition-2 check CI asserts.
    pub probe_rejection: bool,
    /// Send `shutdown` to every daemon after pulling its part.
    pub shutdown: bool,
    /// Skip the population stream entirely: hello, pull the parts the
    /// daemons already hold, merge, finalize. The coordinator move after
    /// restarting a journaled daemon — the reports live in its recovered
    /// session, so streaming them again would double-count (and bounce off
    /// the quota). CI byte-diffs this path against an uninterrupted run.
    pub pull_only: bool,
    /// Retry/backoff policy shared by every wire operation of the run.
    /// The budget is deployment-wide; a daemon that exhausts it is
    /// declared dead and its groups fail over.
    pub retry: RetryPolicy,
    /// Socket deadlines for every connection the coordinator opens.
    /// `None` bounds (the default) wait forever — chaos runs always set
    /// them, because a stalled connection is otherwise unrecoverable.
    pub deadlines: Deadlines,
    /// `Some(k)` runs the secret-shared tier (`submit --secagg k`): the
    /// coordinator acts as the dealer, splitting every report chunk's
    /// bucket-count contribution into `k` additive shares, one per daemon
    /// (so `addrs.len()` must equal `k`). No daemon ever receives a
    /// plaintext report; the finalized outputs are still bit-identical to
    /// [`SubmitSpec::run_local`].
    pub secagg: Option<usize>,
    /// Mask seed of the dealer's [`ShareSplitter`] (secagg runs only).
    pub secagg_seed: u64,
    /// Authentication token presented in every `hello` (`--auth-token`);
    /// required when the daemons were started with an allowlist.
    pub auth_token: Option<u64>,
}

/// Per-daemon observability of one [`SubmitSpec::submit`] run: what was
/// retried, what was dedup'd by the replay guard, and how the run
/// degraded if the daemon died.
#[derive(Debug, Clone, Default)]
pub struct DaemonSummary {
    /// The daemon's address.
    pub addr: String,
    /// Groups whose reports this daemon ultimately owned (after any
    /// failover), in group order.
    pub groups: Vec<usize>,
    /// Wire operations that were retried after a retryable error.
    pub retries: usize,
    /// Connections re-established after a drop.
    pub reconnects: usize,
    /// Retryable errors that were specifically deadline expiries.
    pub timeouts: usize,
    /// Retryable errors that were backpressure sheds
    /// ([`WireError::Throttled`]) — the daemon's apply queue was full and
    /// the coordinator waited out the server's `retry_after_ms` hint.
    pub throttles: usize,
    /// Sequenced batches the daemon (or the reconnect handshake) reported
    /// as already applied — lost acks absorbed by the replay guard.
    pub duplicates: usize,
    /// The daemon died after streaming completed, and its groups were
    /// rebuilt into the coordinator's session from the local precomputed
    /// reports instead of a pulled part (secagg runs: its full intended
    /// share was re-derived from the mask seed instead of pulled).
    pub rebuilt_locally: bool,
    /// The typed error that exhausted the daemon's retries, if it died.
    pub dead: Option<String>,
    /// The daemon's observability counters (`status` frame), captured
    /// after its part was pulled. `None` if the daemon died first.
    pub counters: Option<StatusCounters>,
}

impl DaemonSummary {
    /// One-line stderr rendering (`experiments submit` prints one per
    /// daemon).
    pub fn render(&self) -> String {
        format!(
            "daemon {}: groups {:?}, {} retries ({} timeouts, {} throttles), {} reconnects, \
             {} dup-acks{}{}{}",
            self.addr,
            self.groups,
            self.retries,
            self.timeouts,
            self.throttles,
            self.reconnects,
            self.duplicates,
            if self.rebuilt_locally { ", part rebuilt locally" } else { "" },
            self.dead.as_deref().map(|e| format!(", DEAD: {e}")).unwrap_or_default(),
            self.counters
                .map(|c| {
                    format!(
                        ", status{}: {} channels, {} share-batches, {} journaled, {} checkpoints{}",
                        if c.masked { "[masked]" } else { "" },
                        c.channels,
                        c.shares,
                        c.journal_records,
                        c.checkpoints,
                        c.reactor
                            .map(|r| {
                                format!(
                                    ", reactor: {} queued ({} bytes), {} active (peak {}), \
                                     {} throttled",
                                    r.queue_depth,
                                    r.queued_bytes,
                                    r.active_connections,
                                    r.peak_connections,
                                    r.throttled,
                                )
                            })
                            .unwrap_or_default(),
                    )
                })
                .unwrap_or_default(),
        )
    }
}

/// What a coordinator run produced.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Finalized outputs, in scheme order.
    pub outputs: Vec<DapOutput>,
    /// The typed rejection observed by the probe (when requested).
    pub rejection: Option<WireError>,
    /// Per-daemon retry/failover summary, in `addrs` order.
    pub daemons: Vec<DaemonSummary>,
}

/// How a per-daemon wire operation ultimately failed.
enum OpError {
    /// Retries exhausted (attempts or deployment budget) on retryable
    /// errors — the daemon is considered dead; the run may degrade.
    Dead(String),
    /// A deterministic typed rejection (digest mismatch, quota, replay
    /// violation, …) — retrying cannot help and the run must fail.
    Fatal(String),
}

/// Shared retry state of one submit run: the handshake digest, the
/// policy, and the deployment-wide retry budget it draws down.
struct RetryCtx {
    digest: u64,
    policy: RetryPolicy,
    deadlines: Deadlines,
    budget: usize,
    /// Auth token presented on every handshake (and reconnect).
    auth: Option<u64>,
    /// The dealer's seed commitment — `Some` switches every handshake to
    /// the masked variant, which announces (and re-announces, after a
    /// daemon restart) the commitment.
    commit: Option<u64>,
}

/// Coordinator-side state for one daemon connection.
struct Daemon {
    summary: DaemonSummary,
    client: Option<WireClient>,
    /// This coordinator's channel id on the daemon (deterministic per
    /// deployment + daemon index).
    channel: u64,
    /// Next sequence number to assign on the channel (sequences start at 1).
    next_seq: u64,
    /// Highest sequence known applied (from acks and reconnect handshakes).
    acked: u64,
    /// Whether a connection ever succeeded (distinguishes a reconnect
    /// from the initial connect in the summary).
    connected_once: bool,
    /// The `(k, index)` share role this daemon must advertise in its
    /// masked hello — a wrong or missing role is a deployment error, not
    /// something retries can fix. `None` for plaintext runs.
    expect_secagg: Option<(usize, usize)>,
}

impl Daemon {
    fn new(addr: &str, channel: u64, expect_secagg: Option<(usize, usize)>) -> Daemon {
        Daemon {
            summary: DaemonSummary { addr: addr.to_string(), ..DaemonSummary::default() },
            client: None,
            channel,
            next_seq: 1,
            acked: 0,
            connected_once: false,
            expect_secagg,
        }
    }

    fn is_dead(&self) -> bool {
        self.summary.dead.is_some()
    }

    /// Runs `op` against a connected, handshaken client, retrying per the
    /// policy. A lost connection is re-established and re-handshaken on
    /// the daemon's channel first, so `op` always observes the freshest
    /// acknowledged sequence in `self.acked`.
    fn retrying<T>(
        &mut self,
        ctx: &mut RetryCtx,
        mut op: impl FnMut(&mut WireClient, u64) -> Result<T, WireError>,
    ) -> Result<T, OpError> {
        let mut attempt = 0usize;
        loop {
            attempt += 1;
            let step = (|| -> Result<T, WireError> {
                if self.client.is_none() {
                    // The very first connect tolerates a daemon that is
                    // still binding (spawned moments ago); reconnects use
                    // the configured connect deadline only.
                    let mut c = if self.connected_once {
                        WireClient::connect_with(&self.summary.addr, &ctx.deadlines)?
                    } else {
                        WireClient::connect_retry_with(
                            &self.summary.addr,
                            100,
                            Duration::from_millis(100),
                            &ctx.deadlines,
                        )?
                    };
                    c.set_auth(ctx.auth);
                    let last = match ctx.commit {
                        Some(commit) => {
                            let (_, last, secagg) =
                                c.hello_masked(ctx.digest, Some(self.channel), commit)?;
                            if secagg != self.expect_secagg {
                                return Err(WireError::Failed {
                                    message: format!(
                                        "daemon advertises secagg role {secagg:?}, dealer \
                                         expects {:?}",
                                        self.expect_secagg
                                    ),
                                });
                            }
                            last
                        }
                        None => c.hello_channel(ctx.digest, self.channel)?.1,
                    };
                    if self.connected_once {
                        self.summary.reconnects += 1;
                    }
                    self.connected_once = true;
                    self.acked = self.acked.max(last);
                    self.client = Some(c);
                }
                op(self.client.as_mut().expect("connected"), self.acked)
            })();
            match step {
                Ok(v) => return Ok(v),
                Err(e) if RetryPolicy::retryable(&e) => {
                    if matches!(e, WireError::Timeout { .. }) {
                        self.summary.timeouts += 1;
                    }
                    // A throttle shed the frame *before* it touched the
                    // daemon — the connection itself is healthy, so keep
                    // it and just wait. Transport failures drop the
                    // connection and reconnect (re-handshaking the
                    // channel) on the next attempt.
                    let throttle_hint = match &e {
                        WireError::Throttled { retry_after_ms } => {
                            self.summary.throttles += 1;
                            Some(Duration::from_millis(*retry_after_ms))
                        }
                        _ => {
                            self.client = None;
                            None
                        }
                    };
                    if attempt >= ctx.policy.attempts || ctx.budget == 0 {
                        return Err(OpError::Dead(e.to_string()));
                    }
                    ctx.budget -= 1;
                    self.summary.retries += 1;
                    // Back off at least as long as the server's hint.
                    let pause = ctx.policy.backoff(attempt, self.channel);
                    std::thread::sleep(throttle_hint.map_or(pause, |hint| pause.max(hint)));
                }
                Err(e) => {
                    return Err(OpError::Fatal(format!("daemon {}: {e}", self.summary.addr)))
                }
            }
        }
    }

    /// Sends one sequenced batch, absorbing every retry ambiguity: a
    /// reconnect handshake (or a typed duplicate rejection) showing the
    /// sequence already applied counts it as delivered exactly once.
    fn send_chunk(
        &mut self,
        ctx: &mut RetryCtx,
        group: usize,
        chunk: &[f64],
    ) -> Result<(), OpError> {
        let seq = self.next_seq;
        let channel = self.channel;
        let mut dedup = false;
        let sent = self.retrying(ctx, |client, acked| {
            if acked >= seq {
                // The batch landed but its ack was lost with the
                // connection; the resume handshake proves it applied.
                dedup = true;
                return Ok(());
            }
            match client.ingest_batch_seq(channel, seq, group, chunk) {
                Err(WireError::Rejected(DapError::DuplicateSequence { .. })) => {
                    dedup = true;
                    Ok(())
                }
                r => r,
            }
        });
        if dedup {
            self.summary.duplicates += 1;
        }
        sent?;
        self.next_seq = seq + 1;
        self.acked = self.acked.max(seq);
        Ok(())
    }

    /// [`Daemon::send_chunk`] for the secret-shared tier: one sequenced
    /// share batch (masked `u64` words, never reports) with the same
    /// retry-ambiguity absorption — a reconnect handshake or a typed
    /// duplicate rejection proves the share applied exactly once.
    fn send_shares(
        &mut self,
        ctx: &mut RetryCtx,
        group: usize,
        share: &[u64],
    ) -> Result<(), OpError> {
        let seq = self.next_seq;
        let channel = self.channel;
        let mut dedup = false;
        let sent = self.retrying(ctx, |client, acked| {
            if acked >= seq {
                dedup = true;
                return Ok(());
            }
            match client.ingest_shares(channel, seq, group, share) {
                Err(WireError::Rejected(DapError::DuplicateSequence { .. })) => {
                    dedup = true;
                    Ok(())
                }
                r => r,
            }
        });
        if dedup {
            self.summary.duplicates += 1;
        }
        sent?;
        self.next_seq = seq + 1;
        self.acked = self.acked.max(seq);
        Ok(())
    }

    /// Best-effort capture of the daemon's observability counters into
    /// its summary (run after the pull; a daemon that cannot answer keeps
    /// `counters: None`).
    fn capture_counters(&mut self) {
        if let Some(c) = self.client.as_mut() {
            if let Ok((_, _, _, counters)) = c.status_counters() {
                self.summary.counters = counters;
            }
        }
    }
}

/// The coordinator's channel id on daemon `index`: deterministic per
/// deployment (plan seed, data seed) so retry schedules and journals are
/// reproducible, and distinct per daemon.
fn channel_id(spec: &SubmitSpec, index: usize) -> u64 {
    let mut h = Fnv::new();
    h.bytes(&spec.serve.seed.to_be_bytes());
    h.bytes(&spec.data_seed.to_be_bytes());
    h.bytes(&(index as u64).to_be_bytes());
    h.finish()
}

impl SubmitSpec {
    fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.gamma) {
            return Err(format!("gamma must be in [0, 1], got {}", self.gamma));
        }
        if self.serve.users == 0 {
            return Err("need at least one user".into());
        }
        Ok(())
    }

    /// The honest values and coalition size this spec simulates.
    fn population(&self) -> (Vec<f64>, usize) {
        let m = (self.serve.users as f64 * self.gamma).round() as usize;
        let mut rng = seeded(self.data_seed);
        let honest = match self.serve.mech {
            WireMech::Pm => self.dataset.generate_signed(self.serve.users - m, &mut rng),
            WireMech::Sw => self.dataset.generate_unit(self.serve.users - m, &mut rng),
        };
        (honest, m)
    }

    /// The paper's canonical upper-half poison for the deployment's
    /// mechanism (top of the output domain for PM, the upper inflation
    /// band for SW).
    fn attack(&self) -> Box<dyn Attack> {
        match self.serve.mech {
            WireMech::Pm => Box::new(UniformAttack::of_upper(0.5, 1.0)),
            WireMech::Sw => Box::new(UniformAttack::new(
                Anchor::AboveInputMax(0.5),
                Anchor::AboveInputMax(1.0),
            )),
        }
    }

    /// The in-process reference: literally [`Dap::run_schemes_on`] over the
    /// same population, attack and RNG stream — what the served run is
    /// pinned bit-identical to.
    pub fn run_local(&self, schemes: &[Scheme]) -> Result<Vec<DapOutput>, String> {
        self.validate()?;
        let (honest, byzantine) = self.population();
        let attack = self.attack();
        let mut rng = seeded(self.serve.seed);
        let cfg = self.serve.session_config();
        match self.serve.mech {
            WireMech::Pm => Dap::new(cfg, PiecewiseMechanism::new).and_then(|dap| {
                dap.run_schemes_on(&honest, byzantine, attack.as_ref(), schemes, &mut rng)
            }),
            WireMech::Sw => Dap::new(cfg, SquareWave::new).and_then(|dap| {
                dap.run_schemes_on(&honest, byzantine, attack.as_ref(), schemes, &mut rng)
            }),
        }
        .map_err(|e| e.to_string())
    }

    /// Streams the population to the daemons at `addrs` (group `g` owned
    /// by daemon `g mod n`), pulls the serialized parts, merges and
    /// finalizes at the coordinator. Bit-identical to
    /// [`SubmitSpec::run_local`] — see the module docs for why.
    pub fn submit(
        &self,
        addrs: &[String],
        schemes: &[Scheme],
        opts: SubmitOptions,
    ) -> Result<SubmitOutcome, String> {
        self.validate()?;
        if addrs.is_empty() {
            return Err("need at least one daemon address".into());
        }
        if let Some(k) = opts.secagg {
            if k < 2 {
                return Err(format!("--secagg needs at least 2 share servers, got {k}"));
            }
            if addrs.len() != k {
                return Err(format!(
                    "--secagg {k} needs exactly {k} daemon addresses (one per share), got {}",
                    addrs.len()
                ));
            }
            if opts.pull_only {
                return Err(
                    "--pull-only cannot be combined with --secagg: the dealer's local \
                     chunks are required to finalize (report sums are not secret-shared)"
                        .into(),
                );
            }
            return match self.serve.mech {
                WireMech::Pm => {
                    self.submit_masked_with(PiecewiseMechanism::new, addrs, schemes, opts, k)
                }
                WireMech::Sw => self.submit_masked_with(SquareWave::new, addrs, schemes, opts, k),
            };
        }
        match self.serve.mech {
            WireMech::Pm => self.submit_with(PiecewiseMechanism::new, addrs, schemes, opts),
            WireMech::Sw => self.submit_with(SquareWave::new, addrs, schemes, opts),
        }
    }

    fn submit_with<M, F>(
        &self,
        factory: F,
        addrs: &[String],
        schemes: &[Scheme],
        opts: SubmitOptions,
    ) -> Result<SubmitOutcome, String>
    where
        M: NumericMechanism + Sync,
        F: Fn(Epsilon) -> M,
    {
        let cfg = self.serve.session_config();

        // Mirror `Dap::run_schemes_on` exactly: one RNG stream drives plan
        // construction and then perturbation in group order.
        let mut rng = seeded(self.serve.seed);
        let plan = GroupPlan::build(self.serve.users, cfg.eps, cfg.eps0, &mut rng);
        let mut session = DapSession::new(cfg, plan, &factory).map_err(|e| e.to_string())?;
        let digest = session.state_digest();
        let groups = session.group_count();

        // Simulate the whole population up front (same RNG stream, same
        // group order) into per-group chunk lists. Streaming then becomes
        // pure I/O: a chunk can be retried, and a whole group can fail
        // over to another daemon, without touching the RNG — which is
        // what keeps a faulted run bit-identical to a clean one.
        let group_chunks: Vec<Vec<Vec<f64>>> = if opts.pull_only {
            vec![Vec::new(); groups]
        } else {
            self.build_chunks(&factory, &session, &mut rng)?
        };

        let mut ctx = RetryCtx {
            digest,
            policy: opts.retry,
            deadlines: opts.deadlines,
            budget: opts.retry.budget,
            auth: opts.auth_token,
            commit: None,
        };
        let mut daemons: Vec<Daemon> = addrs
            .iter()
            .enumerate()
            .map(|(i, addr)| Daemon::new(addr, channel_id(self, i), None))
            .collect();

        // Handshake every daemon. A daemon that cannot be reached within
        // the retry budget is dead from the start: fatal for pull-only
        // runs (its session holds data nothing else has), a failover for
        // streaming runs.
        for d in &mut daemons {
            match d.retrying(&mut ctx, |_, _| Ok(())) {
                Ok(()) => {}
                Err(OpError::Fatal(e)) => return Err(e),
                Err(OpError::Dead(e)) => {
                    if opts.pull_only {
                        return Err(format!(
                            "daemon {} is unreachable ({e}) and pull-only has no local \
                             reports to reroute",
                            d.summary.addr
                        ));
                    }
                    d.summary.dead = Some(e);
                }
            }
        }

        // Group `g` starts on daemon `g mod n` (the historical layout);
        // failover reassigns every group of a dead daemon to the next
        // live one and re-streams them from the precomputed chunks.
        let mut owner: Vec<usize> = (0..groups).map(|g| g % daemons.len()).collect();
        if !opts.pull_only {
            let mut done = vec![false; groups];
            while let Some(g) = (0..groups).find(|&g| !done[g]) {
                let d = owner[g];
                if daemons[d].is_dead() {
                    let target = next_live(&daemons, d)
                        .ok_or_else(|| all_dead_error(&daemons))?;
                    for (gg, o) in owner.iter_mut().enumerate() {
                        if *o == d {
                            *o = target;
                            done[gg] = false;
                        }
                    }
                    continue;
                }
                let mut died = false;
                for chunk in &group_chunks[g] {
                    match daemons[d].send_chunk(&mut ctx, g, chunk) {
                        Ok(()) => {}
                        Err(OpError::Fatal(e)) => return Err(e),
                        Err(OpError::Dead(e)) => {
                            daemons[d].summary.dead = Some(e);
                            died = true;
                            break;
                        }
                    }
                }
                if !died {
                    done[g] = true;
                }
                // A death re-enters the loop: the dead daemon's groups
                // (this one and any already completed on it) reassign and
                // re-stream in full — its part is never pulled, so the
                // merged state still holds every report exactly once.
            }
        }

        // Every group is now exactly at quota; one more in-range report
        // must bounce with the typed over-quota rejection. The probe
        // targets whichever daemon owns group 0 after failover.
        let rejection = if opts.probe_rejection {
            let d = &mut daemons[owner[0]];
            d.retrying(&mut ctx, |_, _| Ok(())).map_err(|e| match e {
                OpError::Dead(e) | OpError::Fatal(e) => {
                    format!("rejection probe could not connect: {e}")
                }
            })?;
            match d.client.as_mut().expect("connected").ingest(0, 0.0) {
                Err(e @ WireError::Rejected(DapError::QuotaExceeded { .. })) => Some(e),
                Err(other) => {
                    return Err(format!("rejection probe hit an unexpected error: {other}"))
                }
                Ok(()) => {
                    return Err(
                        "rejection probe was accepted — quota enforcement is broken".into()
                    )
                }
            }
        } else {
            None
        };

        // Pull phase: merge every live daemon's part (dead daemons' groups
        // already live elsewhere). A daemon that dies *during* the pull is
        // past re-streaming — its groups are rebuilt into the
        // coordinator's session from the local precomputed chunks, which
        // is the same reports in the same order, hence still exact.
        for (i, daemon) in daemons.iter_mut().enumerate() {
            if daemon.is_dead() {
                continue;
            }
            match daemon.retrying(&mut ctx, |c, _| c.pull_part()) {
                Ok(part) => {
                    session.merge_part(&part).map_err(|e| e.to_string())?;
                    daemon.capture_counters();
                    if opts.shutdown {
                        if let Some(c) = daemon.client.as_mut() {
                            c.shutdown().map_err(|e| e.to_string())?;
                        }
                    }
                }
                Err(OpError::Fatal(e)) => return Err(e),
                Err(OpError::Dead(e)) => {
                    if opts.pull_only {
                        return Err(format!(
                            "daemon {} died before its part was pulled ({e}) and \
                             pull-only has no local reports to rebuild from",
                            daemon.summary.addr
                        ));
                    }
                    daemon.summary.dead = Some(e);
                    daemon.summary.rebuilt_locally = true;
                    for (g, chunks) in group_chunks.iter().enumerate() {
                        if owner[g] != i {
                            continue;
                        }
                        for chunk in chunks {
                            session.ingest_batch(g, chunk).map_err(|e| e.to_string())?;
                        }
                    }
                }
            }
        }

        for (g, &o) in owner.iter().enumerate() {
            daemons[o].summary.groups.push(g);
        }
        let outputs = session.finalize(schemes).map_err(|e| e.to_string())?;
        Ok(SubmitOutcome {
            outputs,
            rejection,
            daemons: daemons.into_iter().map(|d| d.summary).collect(),
        })
    }

    /// The secret-shared coordinator: acts as the dealer of the
    /// [`dap_core::secagg`] tier. Every report chunk is reduced to its
    /// per-group bucket-count contribution, split into `k` additive
    /// shares, and fanned out — daemon `j` receives share `j` of *every*
    /// chunk and nothing else, so no daemon (nor its journal) ever holds
    /// a plaintext report. The pull phase collects the `k` masked parts,
    /// wrapping-sums them (the masks cancel exactly), and merges the
    /// reconstructed integer histogram — together with the report sums
    /// replayed locally from the dealer's retained chunks, in the same
    /// per-report order — into a fresh plain session. Finalization is
    /// therefore **bit-identical** to [`SubmitSpec::run_local`].
    ///
    /// A daemon that dies is handled by seed reveal: its full intended
    /// share is re-derived from the mask seed ([`ShareSplitter::share_for`])
    /// and combined with the surviving quorum's parts, so one (or more)
    /// lost share servers degrade the run without changing a single
    /// output bit.
    fn submit_masked_with<M, F>(
        &self,
        factory: F,
        addrs: &[String],
        schemes: &[Scheme],
        opts: SubmitOptions,
        k: usize,
    ) -> Result<SubmitOutcome, String>
    where
        M: NumericMechanism + Sync,
        F: Fn(Epsilon) -> M,
    {
        let cfg = self.serve.session_config();
        let mut rng = seeded(self.serve.seed);
        let plan = GroupPlan::build(self.serve.users, cfg.eps, cfg.eps0, &mut rng);
        let mut session = DapSession::new(cfg, plan, &factory).map_err(|e| e.to_string())?;
        let digest = session.state_digest();
        let groups = session.group_count();
        let group_chunks = self.build_chunks(&factory, &session, &mut rng)?;

        // Reduce every chunk to its integer bucket-count contribution —
        // the only thing that leaves the dealer, and only ever masked.
        let mut contributions: Vec<Vec<Vec<u64>>> = Vec::with_capacity(groups);
        for (g, chunks) in group_chunks.iter().enumerate() {
            let resolution = session.histogram(g).counts.len();
            let mut per_chunk = Vec::with_capacity(chunks.len());
            for chunk in chunks {
                let mut counts = vec![0u64; resolution];
                for &r in chunk {
                    counts[session.bucket_of(g, r).map_err(|e| e.to_string())?] += 1;
                }
                per_chunk.push(counts);
            }
            contributions.push(per_chunk);
        }

        let splitter = ShareSplitter::new(k, opts.secagg_seed).map_err(|e| e.to_string())?;
        let commitment = splitter.commitment().digest();

        let mut ctx = RetryCtx {
            digest,
            policy: opts.retry,
            deadlines: opts.deadlines,
            budget: opts.retry.budget,
            auth: opts.auth_token,
            commit: Some(commitment),
        };
        let mut daemons: Vec<Daemon> = addrs
            .iter()
            .enumerate()
            .map(|(i, addr)| Daemon::new(addr, channel_id(self, i), Some((k, i))))
            .collect();

        // Handshake: verifies the deployment digest, announces the seed
        // commitment and checks each daemon serves the share index the
        // dealer will address it with. A dead daemon is tolerated — its
        // share is re-derived at pull time.
        for d in &mut daemons {
            match d.retrying(&mut ctx, |_, _| Ok(())) {
                Ok(()) => {}
                Err(OpError::Fatal(e)) => return Err(e),
                Err(OpError::Dead(e)) => d.summary.dead = Some(e),
            }
        }

        // Stream shares in deterministic group-major chunk order. Unlike
        // the plaintext tier there is no group failover: share `j` is
        // meaningful only to daemon `j`, so a dead daemon is simply
        // skipped (its partial state is never pulled; seed reveal
        // replaces it wholesale).
        for (g, chunks) in contributions.iter().enumerate() {
            for (c, counts) in chunks.iter().enumerate() {
                let shares = splitter.split(g as u64, c as u64, counts);
                for (j, share) in shares.iter().enumerate() {
                    if daemons[j].is_dead() {
                        continue;
                    }
                    match daemons[j].send_shares(&mut ctx, g, share) {
                        Ok(()) => {}
                        Err(OpError::Fatal(e)) => return Err(e),
                        Err(OpError::Dead(e)) => daemons[j].summary.dead = Some(e),
                    }
                }
            }
        }
        if daemons.iter().all(|d| d.is_dead()) {
            return Err(all_dead_error(&daemons));
        }

        // The masked analogue of the quota probe: a share server must
        // refuse a *plaintext* report with the typed mode rejection —
        // the wire-observable "no daemon accepts a report" check.
        let rejection = if opts.probe_rejection {
            let d = daemons
                .iter_mut()
                .find(|d| !d.is_dead())
                .expect("at least one live daemon (checked above)");
            d.retrying(&mut ctx, |_, _| Ok(())).map_err(|e| match e {
                OpError::Dead(e) | OpError::Fatal(e) => {
                    format!("rejection probe could not connect: {e}")
                }
            })?;
            match d.client.as_mut().expect("connected").ingest(0, 0.0) {
                Err(e @ WireError::Rejected(DapError::ModeMismatch { masked: true })) => Some(e),
                Err(other) => {
                    return Err(format!("rejection probe hit an unexpected error: {other}"))
                }
                Ok(()) => {
                    return Err(
                        "rejection probe was accepted — a share server took a plaintext \
                         report"
                            .into(),
                    )
                }
            }
        } else {
            None
        };

        // Pull the masked parts. A daemon lost here (or earlier) has its
        // full intended share re-derived from the mask seed: summing over
        // every retained contribution reproduces exactly what the daemon
        // would have accumulated, masks included.
        let mut parts: Vec<MaskedPart> = Vec::with_capacity(k);
        for daemon in daemons.iter_mut() {
            if daemon.is_dead() {
                continue;
            }
            match daemon.retrying(&mut ctx, |c, _| c.pull_masked()) {
                Ok(part) => {
                    daemon.capture_counters();
                    if opts.shutdown {
                        if let Some(c) = daemon.client.as_mut() {
                            c.shutdown().map_err(|e| e.to_string())?;
                        }
                    }
                    parts.push(part);
                }
                Err(OpError::Fatal(e)) => return Err(e),
                Err(OpError::Dead(e)) => {
                    daemon.summary.dead = Some(e);
                }
            }
        }
        if parts.is_empty() {
            return Err(all_dead_error(&daemons));
        }
        for (j, daemon) in daemons.iter_mut().enumerate() {
            if !daemon.is_dead() {
                continue;
            }
            daemon.summary.rebuilt_locally = true;
            let mut masked: Vec<MaskedGroup> = (0..groups)
                .map(|g| MaskedGroup { counts: vec![0u64; session.histogram(g).counts.len()] })
                .collect();
            for (g, chunks) in contributions.iter().enumerate() {
                for (c, counts) in chunks.iter().enumerate() {
                    let share = splitter.share_for(j, g as u64, c as u64, counts);
                    for (t, &w) in masked[g].counts.iter_mut().zip(&share) {
                        *t = t.wrapping_add(w);
                    }
                }
            }
            parts.push(MaskedPart {
                digest,
                k,
                index: j,
                commitment,
                groups: masked,
                channels: Vec::new(),
            });
        }

        // Wrapping-sum the complete share group: the masks cancel and the
        // true integer histograms emerge. The report tally must agree
        // with what the dealer streamed — a mismatch means a share was
        // lost or double-applied, and is a named failure, never silent.
        let totals = reconstruct(&parts).map_err(|e| e.to_string())?;
        let mut part_groups = Vec::with_capacity(groups);
        for (g, counts) in totals.iter().enumerate() {
            let mut sum_reports = 0.0f64;
            let mut n_reports = 0usize;
            for chunk in &group_chunks[g] {
                for &r in chunk {
                    sum_reports += r;
                    n_reports += 1;
                }
            }
            let reconstructed: u64 = counts.iter().sum();
            if reconstructed != n_reports as u64 {
                return Err(format!(
                    "secagg reconstruction mismatch in group {g}: {reconstructed} \
                     reconstructed reports vs {n_reports} streamed"
                ));
            }
            part_groups.push(PartGroup {
                counts: counts.iter().map(|&c| c as f64).collect(),
                sum_reports,
                n_reports,
            });
        }
        session
            .merge_part(&SessionPart { digest, groups: part_groups, channels: Vec::new() })
            .map_err(|e| e.to_string())?;

        // Every daemon held a share of every group.
        for daemon in daemons.iter_mut() {
            daemon.summary.groups = (0..groups).collect();
        }
        let outputs = session.finalize(schemes).map_err(|e| e.to_string())?;
        Ok(SubmitOutcome {
            outputs,
            rejection,
            daemons: daemons.into_iter().map(|d| d.summary).collect(),
        })
    }

    /// Simulates the population into per-group [`STREAM_CHUNK`]-sized
    /// report chunks, consuming `rng` exactly as the old inline stream
    /// (and [`Dap::run_schemes_on`]) did: per group, honest members in
    /// assignment order, then the group's poison block.
    fn build_chunks<M, F>(
        &self,
        factory: &F,
        session: &DapSession<M>,
        rng: &mut rand::rngs::StdRng,
    ) -> Result<Vec<Vec<Vec<f64>>>, String>
    where
        M: NumericMechanism + Sync,
        F: Fn(Epsilon) -> M,
    {
        let (honest, _) = self.population();
        let attack = self.attack();
        let n_honest = honest.len();
        let mut all = Vec::with_capacity(session.group_count());
        for g in 0..session.group_count() {
            let assign = session.client_assignment(g).map_err(|e| e.to_string())?;
            let mech = factory(assign.eps_t);
            let mut buf = vec![0.0f64; assign.k_t];
            let mut chunks: Vec<Vec<f64>> = Vec::new();
            let mut chunk: Vec<f64> = Vec::with_capacity(STREAM_CHUNK + assign.k_t);
            let mut byz_members = 0usize;
            for i in 0..session.plan().assignment[g].len() {
                let user = session.plan().assignment[g][i];
                if user < n_honest {
                    assign.perturb_into(&mech, honest[user], &mut buf, rng);
                    chunk.extend_from_slice(&buf);
                    if chunk.len() >= STREAM_CHUNK {
                        chunks.push(std::mem::take(&mut chunk));
                    }
                } else {
                    byz_members += 1;
                }
            }
            let mut poison = vec![0.0f64; byz_members * assign.k_t];
            let n_poison = attack.reports_into(&mut poison, &mech, rng);
            chunk.extend_from_slice(&poison[..n_poison]);
            if !chunk.is_empty() {
                chunks.push(chunk);
            }
            all.push(chunks);
        }
        Ok(all)
    }
}

/// The next live daemon after `from` (wrapping), if any survive.
fn next_live(daemons: &[Daemon], from: usize) -> Option<usize> {
    (1..=daemons.len())
        .map(|k| (from + k) % daemons.len())
        .find(|&i| !daemons[i].is_dead())
}

fn all_dead_error(daemons: &[Daemon]) -> String {
    let mut lines = vec!["every daemon is dead; retry budget exhausted:".to_string()];
    for d in daemons {
        lines.push(format!("  {}", d.summary.render()));
    }
    lines.join("\n")
}

/// The `# dap-wire submit:` stdout header — identical between a served
/// run, a chaos run and the `--local` reference, so CI can byte-diff any
/// pair of them.
pub fn submit_header(spec: &SubmitSpec) -> String {
    format!(
        "# dap-wire submit: mech {}, eps {}, eps0 {}, users {}, plan-seed {}, max-dout {}, dataset {}, gamma {}, data-seed {}",
        spec.serve.mech.name(),
        spec.serve.eps,
        spec.serve.eps0,
        spec.serve.users,
        spec.serve.seed,
        spec.serve.max_d_out,
        spec.dataset.label(),
        spec.gamma,
        spec.data_seed,
    )
}

/// Stable text rendering of finalized outputs: human-readable decimals
/// plus the authoritative bit patterns, so CI can byte-diff a served run
/// against a local one.
pub fn render_outputs(schemes: &[Scheme], outputs: &[DapOutput]) -> String {
    assert_eq!(schemes.len(), outputs.len(), "one output per scheme");
    let mut s = String::new();
    outln!(
        s,
        "{:<10} {:>12} {:>6} {:>9}  {:<18} {:<18}",
        "scheme",
        "mean",
        "side",
        "gamma",
        "mean-bits",
        "gamma-bits"
    );
    for (scheme, out) in schemes.iter().zip(outputs) {
        outln!(
            s,
            "{:<10} {:>12.6} {:>6} {:>9.4}  {:<18} {:<18}",
            scheme.label(),
            out.mean,
            format!("{:?}", out.side),
            out.gamma,
            codec::f64_to_hex(out.mean),
            codec::f64_to_hex(out.gamma)
        );
    }
    s
}

/// Experiment ids behind a CLI selector (`"all"` or one id).
pub fn experiment_ids(selector: &str) -> Option<Vec<ExperimentId>> {
    if selector == "all" {
        Some(ExperimentId::ALL.to_vec())
    } else {
        ExperimentId::from_name(selector).map(|e| vec![e])
    }
}

/// The full concatenated cell enumeration for an id list (shard indices
/// refer to this).
pub fn enumerate_cells(ids: &[ExperimentId], opts: &ExpOptions) -> Vec<Cell> {
    let mut cells = Vec::new();
    for e in ids {
        cells.extend(e.cells(opts));
    }
    cells
}

/// Executes one shard request in-process, returning the shard's
/// `dap-results/v1` JSON — the daemon-side half of [`dispatch`], identical
/// in effect to `experiments <id> --shard i/n --out -`.
pub fn run_shard(req: &ShardRequest) -> Result<String, String> {
    let ids = experiment_ids(&req.experiment)
        .ok_or_else(|| format!("unknown experiment '{}'", req.experiment))?;
    if req.count == 0 || req.index >= req.count {
        return Err(format!("invalid shard {}/{}", req.index, req.count));
    }
    let opts = ExpOptions {
        n: req.n,
        trials: req.trials,
        seed: req.seed,
        max_d_out: req.max_d_out,
    };
    let cells = enumerate_cells(&ids, &opts);
    let indices: Vec<usize> =
        (0..cells.len()).filter(|i| i % req.count == req.index).collect();
    let results = run_cells_subset(&opts, &cells, &indices);
    let set = ResultSet::build(
        &req.experiment,
        &opts,
        Some(ShardInfo { index: req.index, count: req.count, cells_total: cells.len() }),
        &cells,
        &results,
    );
    Ok(set.to_json())
}

fn run_shard_frame(req: &ShardRequest) -> Frame {
    match run_shard(req) {
        Ok(json) => Frame::ShardResult { json },
        Err(message) => Frame::Error(WireError::Failed { message }),
    }
}

/// One shard attempt against one daemon — the retriable unit of
/// [`dispatch`]. A shard is pure computation (no session state), so
/// re-running it on another daemon after a failure is always safe.
fn try_shard(
    addr: &str,
    experiment: &str,
    opts: &ExpOptions,
    index: usize,
    count: usize,
    connect_attempts: usize,
) -> Result<ResultSet, String> {
    let mut client =
        WireClient::connect_retry(addr, connect_attempts, Duration::from_millis(100))
            .map_err(|e| format!("cannot reach daemon: {e}"))?;
    let json = client
        .run_shard(&ShardRequest {
            experiment: experiment.to_string(),
            n: opts.n,
            trials: opts.trials,
            seed: opts.seed,
            max_d_out: opts.max_d_out,
            index,
            count,
        })
        .map_err(|e| e.to_string())?;
    ResultSet::from_json(&json)
}

/// Drives a sharded experiment across remote daemons: shard `i` of
/// `addrs.len()` goes to daemon `i`, shards run concurrently, and the
/// merged set passes the same option/coordinate verification as the
/// file-based `experiments merge` — so the result is bit-identical to a
/// local unsharded run.
///
/// A shard whose daemon fails (dead connection, mid-shard reset) is
/// re-dispatched to the other daemons in order — shards are pure compute,
/// so the failover changes nothing about the merged result. Only a shard
/// that fails on *every* daemon fails the dispatch.
pub fn dispatch(
    experiment: &str,
    opts: &ExpOptions,
    addrs: &[String],
) -> Result<ResultSet, String> {
    if addrs.is_empty() {
        return Err("need at least one daemon address".into());
    }
    let shards: Vec<Result<ResultSet, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..addrs.len())
            .map(|i| {
                let experiment = experiment.to_string();
                let opts = *opts;
                let count = addrs.len();
                scope.spawn(move || -> Result<ResultSet, String> {
                    let mut errors = Vec::new();
                    for k in 0..count {
                        let addr = &addrs[(i + k) % count];
                        // The assigned daemon gets startup grace; failover
                        // attempts fail fast so a dead daemon does not
                        // stall the whole dispatch.
                        let attempts = if k == 0 { 100 } else { 3 };
                        match try_shard(addr, &experiment, &opts, i, count, attempts) {
                            Ok(set) => {
                                if k > 0 {
                                    eprintln!(
                                        "[dispatch: shard {i} rerouted to {addr} after: {}]",
                                        errors.join("; ")
                                    );
                                }
                                return Ok(set);
                            }
                            Err(e) => errors.push(format!("{addr}: {e}")),
                        }
                    }
                    Err(format!("shard {i} failed on every daemon: {}", errors.join("; ")))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("dispatch worker")).collect()
    });
    let shards: Vec<ResultSet> = shards.into_iter().collect::<Result<_, _>>()?;
    let merged = ResultSet::merge(shards)?;
    let ids = experiment_ids(&merged.experiment)
        .ok_or_else(|| format!("unknown experiment '{}' in shard replies", merged.experiment))?;
    merged.verify_against(&enumerate_cells(&ids, &merged.options))?;
    Ok(merged)
}

/// Parses a `--dataset` name: the paper label (`Taxi`), case-insensitive,
/// with punctuation optional (`beta25` for `Beta(2,5)`).
pub fn parse_dataset(name: &str) -> Option<Dataset> {
    let wanted = name.to_ascii_lowercase();
    Dataset::ALL.into_iter().find(|d| {
        let label = d.label().to_ascii_lowercase();
        label == wanted || label.replace(['(', ')', ','], "") == wanted
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_names_parse_flexibly() {
        assert_eq!(parse_dataset("taxi"), Some(Dataset::Taxi));
        assert_eq!(parse_dataset("Taxi"), Some(Dataset::Taxi));
        assert_eq!(parse_dataset("Beta(2,5)"), Some(Dataset::Beta25));
        assert_eq!(parse_dataset("beta25"), Some(Dataset::Beta25));
        assert_eq!(parse_dataset("retirement"), Some(Dataset::Retirement));
        assert_eq!(parse_dataset("laundromat"), None);
    }

    #[test]
    fn experiment_selectors_resolve() {
        assert_eq!(experiment_ids("fig7"), Some(vec![ExperimentId::Fig7]));
        assert_eq!(experiment_ids("all").map(|v| v.len()), Some(ExperimentId::ALL.len()));
        assert_eq!(experiment_ids("fig99"), None);
    }

    #[test]
    fn run_shard_rejects_bad_requests() {
        let req = |experiment: &str, index, count| ShardRequest {
            experiment: experiment.into(),
            n: 100,
            trials: 1,
            seed: 1,
            max_d_out: 8,
            index,
            count,
        };
        assert!(run_shard(&req("fig99", 0, 1)).unwrap_err().contains("unknown experiment"));
        assert!(run_shard(&req("fig7", 2, 2)).unwrap_err().contains("invalid shard"));
    }

    #[test]
    fn spec_digests_agree_between_parties_and_differ_between_deployments() {
        let spec = ServeSpec {
            mech: WireMech::Pm,
            eps: 0.25,
            eps0: 1.0 / 16.0,
            users: 200,
            seed: 5,
            max_d_out: 16,
            secagg: None,
        };
        assert_eq!(spec.state_digest().unwrap(), spec.state_digest().unwrap());
        let other_seed = ServeSpec { seed: 6, ..spec };
        assert_ne!(spec.state_digest().unwrap(), other_seed.state_digest().unwrap());
        let sw = ServeSpec { mech: WireMech::Sw, ..spec };
        assert_ne!(spec.state_digest().unwrap(), sw.state_digest().unwrap());
        // The masked twin of a deployment shares its hello digest — what
        // lets the dealer handshake share servers with the same digest it
        // uses locally.
        let masked = ServeSpec {
            secagg: Some(dap_core::SecaggRole { k: 3, index: 1 }),
            ..spec
        };
        assert_eq!(spec.state_digest().unwrap(), masked.state_digest().unwrap());
    }
}
