//! The serving stack behind `experiments serve / submit / dispatch`: named
//! deployments over `dap-wire/v1` ([`dap_core::net`]).
//!
//! Three roles, all std-only TCP:
//!
//! * **Daemon** ([`ServeSpec::serve`]) — owns one [`DapSession`] built
//!   from a named deployment (mechanism, ε, user count, plan seed) and
//!   answers the full wire surface. All parties rebuild the identical
//!   grouping plan from the shared plan seed, so the hello digest
//!   handshake catches any disagreement up front. Bench daemons also
//!   execute `run-shard` frames, which is what makes a distributed
//!   `experiments all` possible.
//! * **Coordinator** ([`SubmitSpec::submit`]) — simulates the population
//!   client-side exactly as [`Dap::run_schemes`] does (same RNG stream,
//!   same per-group order), but streams each group's reports to the daemon
//!   that owns it (group `g` → daemon `g mod n`), pulls the serialized
//!   parts back, merges and finalizes locally. Because every group lives
//!   wholly on one daemon and the wire carries exact f64 bit patterns, the
//!   result is **bit-identical** to the in-process run
//!   ([`SubmitSpec::run_local`]) — pinned by `crates/bench/tests/serve.rs`
//!   and CI's `serve-smoke` job.
//! * **Shard driver** ([`dispatch`]) — sends shard `i/n` of an experiment
//!   to daemon `i`, concurrently, and merges the returned `dap-results/v1`
//!   documents with the same verification as the file-based
//!   `experiments merge`.

use crate::cell::{Cell, ExperimentId};
use crate::common::ExpOptions;
use crate::engine::run_cells_subset;
use crate::results::{codec, ResultSet, ShardInfo};
use crate::outln;
use dap_attack::{Anchor, Attack, UniformAttack};
use dap_core::net::{serve_session, Frame, ShardRequest, WireClient, WireError};
use dap_core::storage::{DurableOptions, DurableSession, FileBackend, Recovery};
use dap_core::{
    Dap, DapConfig, DapError, DapOutput, DapSession, GroupPlan, Scheme, SwDapConfig,
};
use dap_datasets::Dataset;
use dap_estimation::rng::seeded;
use dap_ldp::{Epsilon, NumericMechanism, PiecewiseMechanism, SquareWave};
use std::net::TcpListener;
use std::path::Path;
use std::time::Duration;

/// How many reports the coordinator accumulates before flushing one
/// `ingest-batch` frame (order within a group is preserved, which is all
/// exactness needs).
const STREAM_CHUNK: usize = 8192;

/// The LDP mechanism of a served deployment (what `--mech` names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMech {
    /// Piecewise Mechanism, report-sum estimation (the paper's default).
    Pm,
    /// Square Wave, histogram-band estimation (§V-D).
    Sw,
}

impl WireMech {
    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            WireMech::Pm => "pm",
            WireMech::Sw => "sw",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(name: &str) -> Option<WireMech> {
        match name {
            "pm" => Some(WireMech::Pm),
            "sw" => Some(WireMech::Sw),
            _ => None,
        }
    }
}

/// A named deployment: everything daemon and coordinator must agree on to
/// build compatible sessions. The agreement is *verified*, not assumed —
/// [`DapSession::state_digest`] covers the derived config, plan and grids,
/// and the wire handshake compares digests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeSpec {
    /// The deployment's mechanism.
    pub mech: WireMech,
    /// Global per-user budget ε.
    pub eps: f64,
    /// Minimum group budget ε₀.
    pub eps0: f64,
    /// Total user count (honest + coalition) — fixes the plan's quotas.
    pub users: usize,
    /// Plan seed: every party rebuilds the identical [`GroupPlan`] from
    /// it (and the coordinator continues the same stream into
    /// perturbation, mirroring [`Dap::run_schemes`]).
    pub seed: u64,
    /// EMF bucket cap.
    pub max_d_out: usize,
}

impl ServeSpec {
    /// The session configuration this deployment derives.
    pub fn session_config(&self) -> DapConfig {
        match self.mech {
            WireMech::Pm => DapConfig {
                eps0: self.eps0,
                max_d_out: self.max_d_out,
                ..DapConfig::paper_default(self.eps, Scheme::Emf)
            },
            WireMech::Sw => SwDapConfig {
                eps0: self.eps0,
                max_d_out: self.max_d_out,
                ..SwDapConfig::paper_default(self.eps, Scheme::Emf)
            }
            .session_config(),
        }
    }

    /// The grouping plan, rebuilt deterministically from the plan seed.
    pub fn plan(&self) -> GroupPlan {
        GroupPlan::build(self.users, self.eps, self.eps0, &mut seeded(self.seed))
    }

    fn pm_session(&self) -> Result<DapSession<PiecewiseMechanism>, DapError> {
        DapSession::new(self.session_config(), self.plan(), PiecewiseMechanism::new)
    }

    fn sw_session(&self) -> Result<DapSession<SquareWave>, DapError> {
        DapSession::new(self.session_config(), self.plan(), SquareWave::new)
    }

    /// The deployment's compatibility digest (what `hello` exchanges).
    pub fn state_digest(&self) -> Result<u64, String> {
        match self.mech {
            WireMech::Pm => self.pm_session().map(|s| s.state_digest()),
            WireMech::Sw => self.sw_session().map(|s| s.state_digest()),
        }
        .map_err(|e| e.to_string())
    }

    /// Serves this deployment on `listener` until a client sends
    /// `shutdown`. Session frames hit the owned [`DapSession`]
    /// (Definition 2 enforced at the door via the typed rejections);
    /// `run-shard` frames execute experiment shards in-process.
    pub fn serve(&self, listener: TcpListener) -> Result<(), String> {
        let extra = |frame: &Frame| match frame {
            Frame::RunShard { request } => Some(run_shard_frame(request)),
            _ => None,
        };
        match self.mech {
            WireMech::Pm => {
                let session = self.pm_session().map_err(|e| e.to_string())?;
                serve_session(listener, session, extra).map_err(|e| e.to_string())?;
            }
            WireMech::Sw => {
                let session = self.sw_session().map_err(|e| e.to_string())?;
                serve_session(listener, session, extra).map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }

    /// [`ServeSpec::serve`] with write-ahead durability: the session is
    /// wrapped in a [`DurableSession`] journaling to `dir`, so a daemon
    /// killed mid-submit and restarted on the same directory resumes with
    /// every acknowledged report intact (`experiments serve --journal`).
    /// Recovery is summarized on stderr; a corrupt journal refuses to
    /// serve with the typed [`DapError::Journal`] — silently dropping
    /// acknowledged data is never the default.
    ///
    /// `sync` selects the durability model: `false` survives a killed
    /// process (flushed writes live in the kernel), `true` adds an
    /// `fsync` per accepted record so acknowledged ingests also survive
    /// an OS crash or power loss (`--journal-sync`).
    pub fn serve_durable(
        &self,
        listener: TcpListener,
        dir: &Path,
        checkpoint_every: usize,
        sync: bool,
    ) -> Result<(), String> {
        let extra = |frame: &Frame| match frame {
            Frame::RunShard { request } => Some(run_shard_frame(request)),
            _ => None,
        };
        let open_backend = || {
            if sync { FileBackend::open_sync(dir) } else { FileBackend::open(dir) }
                .map_err(|e| e.to_string())
        };
        let opts = DurableOptions { checkpoint_every, ..DurableOptions::default() };
        match self.mech {
            WireMech::Pm => {
                let session = self.pm_session().map_err(|e| e.to_string())?;
                let (durable, recovery) =
                    DurableSession::open(session, open_backend()?, opts).map_err(|e| e.to_string())?;
                log_recovery(dir, &recovery);
                serve_session(listener, durable, extra).map_err(|e| e.to_string())?;
            }
            WireMech::Sw => {
                let session = self.sw_session().map_err(|e| e.to_string())?;
                let (durable, recovery) =
                    DurableSession::open(session, open_backend()?, opts).map_err(|e| e.to_string())?;
                log_recovery(dir, &recovery);
                serve_session(listener, durable, extra).map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }
}

fn log_recovery(dir: &Path, recovery: &Recovery) {
    eprintln!(
        "[journal {}: checkpoint {}, {} records replayed{}{}]",
        dir.display(),
        if recovery.from_checkpoint { "restored" } else { "none" },
        recovery.replayed,
        recovery
            .torn
            .map(|at| format!(", torn tail dropped at byte {at}"))
            .unwrap_or_default(),
        recovery
            .salvaged
            .as_deref()
            .map(|s| format!(", salvaged past: {s}"))
            .unwrap_or_default(),
    );
}

/// A coordinator run: the deployment plus the simulated population it
/// streams (dataset, coalition share, data seed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmitSpec {
    /// The deployment (must match the daemons').
    pub serve: ServeSpec,
    /// Honest-value dataset.
    pub dataset: Dataset,
    /// Coalition proportion γ.
    pub gamma: f64,
    /// Seed of the honest-value draw (independent of the plan seed).
    pub data_seed: u64,
}

/// Knobs of one [`SubmitSpec::submit`] call.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// After streaming the full population, send one extra in-range report
    /// and require the typed over-quota rejection — the observable
    /// wire-level Definition-2 check CI asserts.
    pub probe_rejection: bool,
    /// Send `shutdown` to every daemon after pulling its part.
    pub shutdown: bool,
    /// Skip the population stream entirely: hello, pull the parts the
    /// daemons already hold, merge, finalize. The coordinator move after
    /// restarting a journaled daemon — the reports live in its recovered
    /// session, so streaming them again would double-count (and bounce off
    /// the quota). CI byte-diffs this path against an uninterrupted run.
    pub pull_only: bool,
}

/// What a coordinator run produced.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// Finalized outputs, in scheme order.
    pub outputs: Vec<DapOutput>,
    /// The typed rejection observed by the probe (when requested).
    pub rejection: Option<WireError>,
}

impl SubmitSpec {
    fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.gamma) {
            return Err(format!("gamma must be in [0, 1], got {}", self.gamma));
        }
        if self.serve.users == 0 {
            return Err("need at least one user".into());
        }
        Ok(())
    }

    /// The honest values and coalition size this spec simulates.
    fn population(&self) -> (Vec<f64>, usize) {
        let m = (self.serve.users as f64 * self.gamma).round() as usize;
        let mut rng = seeded(self.data_seed);
        let honest = match self.serve.mech {
            WireMech::Pm => self.dataset.generate_signed(self.serve.users - m, &mut rng),
            WireMech::Sw => self.dataset.generate_unit(self.serve.users - m, &mut rng),
        };
        (honest, m)
    }

    /// The paper's canonical upper-half poison for the deployment's
    /// mechanism (top of the output domain for PM, the upper inflation
    /// band for SW).
    fn attack(&self) -> Box<dyn Attack> {
        match self.serve.mech {
            WireMech::Pm => Box::new(UniformAttack::of_upper(0.5, 1.0)),
            WireMech::Sw => Box::new(UniformAttack::new(
                Anchor::AboveInputMax(0.5),
                Anchor::AboveInputMax(1.0),
            )),
        }
    }

    /// The in-process reference: literally [`Dap::run_schemes_on`] over the
    /// same population, attack and RNG stream — what the served run is
    /// pinned bit-identical to.
    pub fn run_local(&self, schemes: &[Scheme]) -> Result<Vec<DapOutput>, String> {
        self.validate()?;
        let (honest, byzantine) = self.population();
        let attack = self.attack();
        let mut rng = seeded(self.serve.seed);
        let cfg = self.serve.session_config();
        match self.serve.mech {
            WireMech::Pm => Dap::new(cfg, PiecewiseMechanism::new).and_then(|dap| {
                dap.run_schemes_on(&honest, byzantine, attack.as_ref(), schemes, &mut rng)
            }),
            WireMech::Sw => Dap::new(cfg, SquareWave::new).and_then(|dap| {
                dap.run_schemes_on(&honest, byzantine, attack.as_ref(), schemes, &mut rng)
            }),
        }
        .map_err(|e| e.to_string())
    }

    /// Streams the population to the daemons at `addrs` (group `g` owned
    /// by daemon `g mod n`), pulls the serialized parts, merges and
    /// finalizes at the coordinator. Bit-identical to
    /// [`SubmitSpec::run_local`] — see the module docs for why.
    pub fn submit(
        &self,
        addrs: &[String],
        schemes: &[Scheme],
        opts: SubmitOptions,
    ) -> Result<SubmitOutcome, String> {
        self.validate()?;
        if addrs.is_empty() {
            return Err("need at least one daemon address".into());
        }
        match self.serve.mech {
            WireMech::Pm => self.submit_with(PiecewiseMechanism::new, addrs, schemes, opts),
            WireMech::Sw => self.submit_with(SquareWave::new, addrs, schemes, opts),
        }
    }

    fn submit_with<M, F>(
        &self,
        factory: F,
        addrs: &[String],
        schemes: &[Scheme],
        opts: SubmitOptions,
    ) -> Result<SubmitOutcome, String>
    where
        M: NumericMechanism + Sync,
        F: Fn(Epsilon) -> M,
    {
        let cfg = self.serve.session_config();

        // Mirror `Dap::run_schemes_on` exactly: one RNG stream drives plan
        // construction and then perturbation in group order.
        let mut rng = seeded(self.serve.seed);
        let plan = GroupPlan::build(self.serve.users, cfg.eps, cfg.eps0, &mut rng);
        let mut session = DapSession::new(cfg, plan, &factory).map_err(|e| e.to_string())?;
        let digest = session.state_digest();

        let mut clients = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let mut client = WireClient::connect_retry(addr, 100, Duration::from_millis(100))
                .map_err(|e| format!("cannot reach daemon {addr}: {e}"))?;
            client.hello(digest).map_err(|e| format!("handshake with {addr} failed: {e}"))?;
            clients.push(client);
        }

        if !opts.pull_only {
            self.stream_population(&factory, &session, &mut clients, &mut rng)?;
        }

        // Every group is now exactly at quota; one more in-range report
        // must bounce with the typed over-quota rejection.
        let rejection = if opts.probe_rejection {
            match clients[0].ingest(0, 0.0) {
                Err(e @ WireError::Rejected(DapError::QuotaExceeded { .. })) => Some(e),
                Err(other) => {
                    return Err(format!("rejection probe hit an unexpected error: {other}"))
                }
                Ok(()) => {
                    return Err(
                        "rejection probe was accepted — quota enforcement is broken".into()
                    )
                }
            }
        } else {
            None
        };

        for client in &mut clients {
            let part = client.pull_part().map_err(|e| e.to_string())?;
            session.merge_part(&part).map_err(|e| e.to_string())?;
            if opts.shutdown {
                client.shutdown().map_err(|e| e.to_string())?;
            }
        }
        let outputs = session.finalize(schemes).map_err(|e| e.to_string())?;
        Ok(SubmitOutcome { outputs, rejection })
    }

    /// The population stream of a full submit: simulates every user in
    /// group order (the `Dap::run_schemes_on` RNG stream continues through
    /// `rng`) and sends each group's reports to its owning daemon in
    /// [`STREAM_CHUNK`] batches.
    fn stream_population<M, F>(
        &self,
        factory: &F,
        session: &DapSession<M>,
        clients: &mut [WireClient],
        rng: &mut rand::rngs::StdRng,
    ) -> Result<(), String>
    where
        M: NumericMechanism + Sync,
        F: Fn(Epsilon) -> M,
    {
        let (honest, _) = self.population();
        let attack = self.attack();
        let n_honest = honest.len();
        for g in 0..session.group_count() {
            let owner = g % clients.len();
            let assign = session.client_assignment(g).map_err(|e| e.to_string())?;
            let mech = factory(assign.eps_t);
            let mut buf = vec![0.0f64; assign.k_t];
            let mut chunk: Vec<f64> = Vec::with_capacity(STREAM_CHUNK + assign.k_t);
            let mut byz_members = 0usize;
            for i in 0..session.plan().assignment[g].len() {
                let user = session.plan().assignment[g][i];
                if user < n_honest {
                    assign.perturb_into(&mech, honest[user], &mut buf, rng);
                    chunk.extend_from_slice(&buf);
                    if chunk.len() >= STREAM_CHUNK {
                        clients[owner].ingest_batch(g, &chunk).map_err(|e| e.to_string())?;
                        chunk.clear();
                    }
                } else {
                    byz_members += 1;
                }
            }
            let mut poison = vec![0.0f64; byz_members * assign.k_t];
            let n_poison = attack.reports_into(&mut poison, &mech, rng);
            chunk.extend_from_slice(&poison[..n_poison]);
            if !chunk.is_empty() {
                clients[owner].ingest_batch(g, &chunk).map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }
}

/// Stable text rendering of finalized outputs: human-readable decimals
/// plus the authoritative bit patterns, so CI can byte-diff a served run
/// against a local one.
pub fn render_outputs(schemes: &[Scheme], outputs: &[DapOutput]) -> String {
    assert_eq!(schemes.len(), outputs.len(), "one output per scheme");
    let mut s = String::new();
    outln!(
        s,
        "{:<10} {:>12} {:>6} {:>9}  {:<18} {:<18}",
        "scheme",
        "mean",
        "side",
        "gamma",
        "mean-bits",
        "gamma-bits"
    );
    for (scheme, out) in schemes.iter().zip(outputs) {
        outln!(
            s,
            "{:<10} {:>12.6} {:>6} {:>9.4}  {:<18} {:<18}",
            scheme.label(),
            out.mean,
            format!("{:?}", out.side),
            out.gamma,
            codec::f64_to_hex(out.mean),
            codec::f64_to_hex(out.gamma)
        );
    }
    s
}

/// Experiment ids behind a CLI selector (`"all"` or one id).
pub fn experiment_ids(selector: &str) -> Option<Vec<ExperimentId>> {
    if selector == "all" {
        Some(ExperimentId::ALL.to_vec())
    } else {
        ExperimentId::from_name(selector).map(|e| vec![e])
    }
}

/// The full concatenated cell enumeration for an id list (shard indices
/// refer to this).
pub fn enumerate_cells(ids: &[ExperimentId], opts: &ExpOptions) -> Vec<Cell> {
    let mut cells = Vec::new();
    for e in ids {
        cells.extend(e.cells(opts));
    }
    cells
}

/// Executes one shard request in-process, returning the shard's
/// `dap-results/v1` JSON — the daemon-side half of [`dispatch`], identical
/// in effect to `experiments <id> --shard i/n --out -`.
pub fn run_shard(req: &ShardRequest) -> Result<String, String> {
    let ids = experiment_ids(&req.experiment)
        .ok_or_else(|| format!("unknown experiment '{}'", req.experiment))?;
    if req.count == 0 || req.index >= req.count {
        return Err(format!("invalid shard {}/{}", req.index, req.count));
    }
    let opts = ExpOptions {
        n: req.n,
        trials: req.trials,
        seed: req.seed,
        max_d_out: req.max_d_out,
    };
    let cells = enumerate_cells(&ids, &opts);
    let indices: Vec<usize> =
        (0..cells.len()).filter(|i| i % req.count == req.index).collect();
    let results = run_cells_subset(&opts, &cells, &indices);
    let set = ResultSet::build(
        &req.experiment,
        &opts,
        Some(ShardInfo { index: req.index, count: req.count, cells_total: cells.len() }),
        &cells,
        &results,
    );
    Ok(set.to_json())
}

fn run_shard_frame(req: &ShardRequest) -> Frame {
    match run_shard(req) {
        Ok(json) => Frame::ShardResult { json },
        Err(message) => Frame::Error(WireError::Failed { message }),
    }
}

/// Drives a sharded experiment across remote daemons: shard `i` of
/// `addrs.len()` goes to daemon `i`, shards run concurrently, and the
/// merged set passes the same option/coordinate verification as the
/// file-based `experiments merge` — so the result is bit-identical to a
/// local unsharded run.
pub fn dispatch(
    experiment: &str,
    opts: &ExpOptions,
    addrs: &[String],
) -> Result<ResultSet, String> {
    if addrs.is_empty() {
        return Err("need at least one daemon address".into());
    }
    let shards: Vec<Result<ResultSet, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = addrs
            .iter()
            .enumerate()
            .map(|(i, addr)| {
                let experiment = experiment.to_string();
                let opts = *opts;
                let count = addrs.len();
                scope.spawn(move || -> Result<ResultSet, String> {
                    let mut client =
                        WireClient::connect_retry(addr, 100, Duration::from_millis(100))
                            .map_err(|e| format!("cannot reach daemon {addr}: {e}"))?;
                    let json = client
                        .run_shard(&ShardRequest {
                            experiment,
                            n: opts.n,
                            trials: opts.trials,
                            seed: opts.seed,
                            max_d_out: opts.max_d_out,
                            index: i,
                            count,
                        })
                        .map_err(|e| format!("{addr}: {e}"))?;
                    ResultSet::from_json(&json).map_err(|e| format!("{addr}: {e}"))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("dispatch worker")).collect()
    });
    let shards: Vec<ResultSet> = shards.into_iter().collect::<Result<_, _>>()?;
    let merged = ResultSet::merge(shards)?;
    let ids = experiment_ids(&merged.experiment)
        .ok_or_else(|| format!("unknown experiment '{}' in shard replies", merged.experiment))?;
    merged.verify_against(&enumerate_cells(&ids, &merged.options))?;
    Ok(merged)
}

/// Parses a `--dataset` name: the paper label (`Taxi`), case-insensitive,
/// with punctuation optional (`beta25` for `Beta(2,5)`).
pub fn parse_dataset(name: &str) -> Option<Dataset> {
    let wanted = name.to_ascii_lowercase();
    Dataset::ALL.into_iter().find(|d| {
        let label = d.label().to_ascii_lowercase();
        label == wanted || label.replace(['(', ')', ','], "") == wanted
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_names_parse_flexibly() {
        assert_eq!(parse_dataset("taxi"), Some(Dataset::Taxi));
        assert_eq!(parse_dataset("Taxi"), Some(Dataset::Taxi));
        assert_eq!(parse_dataset("Beta(2,5)"), Some(Dataset::Beta25));
        assert_eq!(parse_dataset("beta25"), Some(Dataset::Beta25));
        assert_eq!(parse_dataset("retirement"), Some(Dataset::Retirement));
        assert_eq!(parse_dataset("laundromat"), None);
    }

    #[test]
    fn experiment_selectors_resolve() {
        assert_eq!(experiment_ids("fig7"), Some(vec![ExperimentId::Fig7]));
        assert_eq!(experiment_ids("all").map(|v| v.len()), Some(ExperimentId::ALL.len()));
        assert_eq!(experiment_ids("fig99"), None);
    }

    #[test]
    fn run_shard_rejects_bad_requests() {
        let req = |experiment: &str, index, count| ShardRequest {
            experiment: experiment.into(),
            n: 100,
            trials: 1,
            seed: 1,
            max_d_out: 8,
            index,
            count,
        };
        assert!(run_shard(&req("fig99", 0, 1)).unwrap_err().contains("unknown experiment"));
        assert!(run_shard(&req("fig7", 2, 2)).unwrap_err().contains("invalid shard"));
    }

    #[test]
    fn spec_digests_agree_between_parties_and_differ_between_deployments() {
        let spec = ServeSpec {
            mech: WireMech::Pm,
            eps: 0.25,
            eps0: 1.0 / 16.0,
            users: 200,
            seed: 5,
            max_d_out: 16,
        };
        assert_eq!(spec.state_digest().unwrap(), spec.state_digest().unwrap());
        let other_seed = ServeSpec { seed: 6, ..spec };
        assert_ne!(spec.state_digest().unwrap(), other_seed.state_digest().unwrap());
        let sw = ServeSpec { mech: WireMech::Sw, ..spec };
        assert_ne!(spec.state_digest().unwrap(), sw.state_digest().unwrap());
    }
}
