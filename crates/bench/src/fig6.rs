//! Fig. 6: MSE of mean estimation — the paper's headline comparison.
//! 16 panels: 4 datasets × 4 poison ranges; each panel sweeps
//! ε ∈ {1/4, 1/2, 1, 3/2, 2} for DAP_EMF / DAP_EMF* / DAP_CEMF* /
//! Ostrich / Trimming.
//!
//! Each panel column shares one protocol execution across the three DAP
//! schemes and one batch across the two defenses (common random numbers).

use crate::common::{
    build_population, dap_config, mse_over_trials, mses_over_trials, sci, simulate_batch,
    stream_id, ExpOptions, PoiRange,
};
use dap_attack::Side;
use dap_core::{Dap, Scheme};
use dap_datasets::Dataset;
use dap_defenses::{MeanDefense, Ostrich, Trimming};
use dap_ldp::PiecewiseMechanism;

/// The Fig. 6 budget axis.
pub const EPSILONS: [f64; 5] = [0.25, 0.5, 1.0, 1.5, 2.0];

/// MSE of one DAP scheme on a (dataset, range, eps) cell.
pub fn dap_mse(
    dataset: Dataset,
    range: PoiRange,
    gamma: f64,
    eps: f64,
    scheme: Scheme,
    opts: &ExpOptions,
    stream: u64,
) -> f64 {
    mse_over_trials(opts, stream, |rng| {
        let (population, truth) = build_population(dataset, opts.n, gamma, rng);
        let dap = Dap::new(dap_config(opts, eps, scheme), PiecewiseMechanism::new)
            .expect("valid config");
        let out = dap.run(&population, &range.attack(), rng).expect("valid run");
        (out.mean, truth)
    })
}

/// Prints one panel (a dataset × range cell across the ε axis).
pub fn panel(dataset: Dataset, range: PoiRange, opts: &ExpOptions, base_stream: u64) {
    println!("-- {} , Poi{} (gamma = 0.25) --", dataset.label(), range.label());
    print!("{:<12}", "scheme");
    for eps in EPSILONS {
        print!(" {:>10}", format!("eps={eps}"));
    }
    println!();
    let scheme_columns: Vec<Vec<f64>> = EPSILONS
        .into_iter()
        .enumerate()
        .map(|(ei, eps)| {
            mses_over_trials(
                opts,
                base_stream + stream_id(&[1, ei]) % 1000,
                Scheme::ALL.len(),
                |rng| {
                    let (population, truth) = build_population(dataset, opts.n, 0.25, rng);
                    let dap =
                        Dap::new(dap_config(opts, eps, Scheme::Emf), PiecewiseMechanism::new)
                            .expect("valid config");
                    let outs = dap
                        .run_schemes(&population, &range.attack(), &Scheme::ALL, rng)
                        .expect("valid run");
                    (outs.into_iter().map(|o| o.mean).collect(), truth)
                },
            )
        })
        .collect();
    for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
        print!("{:<12}", scheme.label());
        for col in &scheme_columns {
            print!(" {:>10}", sci(col[si]));
        }
        println!();
    }

    let trimming = Trimming::paper_default(Side::Right);
    let defenses: [&dyn MeanDefense; 2] = [&Ostrich, &trimming];
    let defense_columns: Vec<Vec<f64>> = EPSILONS
        .into_iter()
        .enumerate()
        .map(|(ei, eps)| {
            mses_over_trials(opts, base_stream + stream_id(&[90, ei]) % 1000, 2, |rng| {
                let (reports, truth) =
                    simulate_batch(dataset, opts.n, 0.25, eps, &range.attack(), rng);
                (defenses.iter().map(|d| d.estimate_mean(&reports, rng)).collect(), truth)
            })
        })
        .collect();
    for (di, defense) in defenses.into_iter().enumerate() {
        print!("{:<12}", defense.label().split('(').next().expect("label"));
        for col in &defense_columns {
            print!(" {:>10}", sci(col[di]));
        }
        println!();
    }
    println!();
}

/// Runs all 16 panels.
pub fn run(opts: &ExpOptions) {
    println!("== Fig. 6: MSE of mean estimation vs eps ==\n");
    for (di, dataset) in Dataset::ALL.into_iter().enumerate() {
        for (ri, range) in PoiRange::ALL.into_iter().enumerate() {
            panel(dataset, range, opts, stream_id(&[600, di, ri]));
        }
    }
    println!("expected shape: DAP family below Ostrich/Trimming except when poison hugs O at large eps (panels j, k, n).\n");
}
