//! Fig. 6: MSE of mean estimation — the paper's headline comparison.
//! 16 panels: 4 datasets × 4 poison ranges; each panel sweeps
//! ε ∈ {1/4, 1/2, 1, 3/2, 2} for DAP_EMF / DAP_EMF* / DAP_CEMF* /
//! Ostrich / Trimming.
//!
//! Each panel column is **one cell**: the three DAP schemes share one
//! protocol execution and the two defenses share one batch drawn from the
//! same cached population (common random numbers across all five rows).

use crate::cell::{AttackSpec, Cell, CellKind, ExperimentId, MechKind, SchemeSet};
use crate::common::{sci, ExpOptions, PoiRange};
use crate::engine::{run_cells, ResultMap};
use crate::{out, outln};
use dap_core::{Scheme, Weighting};
use dap_datasets::Dataset;

/// The Fig. 6 budget axis.
pub const EPSILONS: [f64; 5] = [0.25, 0.5, 1.0, 1.5, 2.0];

/// Coalition proportion of every panel.
pub const GAMMA: f64 = 0.25;

fn cell(dataset: Dataset, range: PoiRange, eps: f64) -> Cell {
    Cell::new(
        ExperimentId::Fig6,
        format!("{}|{}", dataset.label(), range.label()),
        CellKind::PmMse {
            dataset,
            gamma: GAMMA,
            eps,
            attack: AttackSpec::Poi(range),
            schemes: SchemeSet::All,
            defenses: true,
            weighting: Weighting::AlgorithmFive,
            mechanism: MechKind::Pm,
        },
    )
}

/// All 16 panels × 5 budgets.
pub fn cells(_opts: &ExpOptions) -> Vec<Cell> {
    let mut cells = Vec::new();
    for dataset in Dataset::ALL {
        for range in PoiRange::ALL {
            for eps in EPSILONS {
                cells.push(cell(dataset, range, eps));
            }
        }
    }
    cells
}

/// Renders one panel (a dataset × range cell across the ε axis).
fn render_panel(dataset: Dataset, range: PoiRange, r: &ResultMap, s: &mut String) {
    outln!(s, "-- {} , Poi{} (gamma = {GAMMA}) --", dataset.label(), range.label());
    out!(s, "{:<12}", "scheme");
    for eps in EPSILONS {
        out!(s, " {:>10}", format!("eps={eps}"));
    }
    outln!(s);
    let labels: Vec<&str> = Scheme::ALL
        .iter()
        .map(|sch| sch.label())
        .chain(["Ostrich", "Trimming"])
        .collect();
    for (row, label) in labels.into_iter().enumerate() {
        out!(s, "{:<12}", label);
        for eps in EPSILONS {
            out!(s, " {:>10}", sci(r.get(&cell(dataset, range, eps))[row]));
        }
        outln!(s);
    }
    outln!(s);
}

/// Renders all 16 panels.
pub fn render(_opts: &ExpOptions, r: &ResultMap) -> String {
    let mut s = String::new();
    outln!(s, "== Fig. 6: MSE of mean estimation vs eps ==\n");
    for dataset in Dataset::ALL {
        for range in PoiRange::ALL {
            render_panel(dataset, range, r, &mut s);
        }
    }
    outln!(s, "expected shape: DAP family below Ostrich/Trimming except when poison hugs O at large eps (panels j, k, n).\n");
    s
}

/// Enumerate → execute → print.
pub fn run(opts: &ExpOptions) {
    let cells = cells(opts);
    let results = run_cells(opts, &cells);
    print!("{}", render(opts, &ResultMap::from_results(&results)));
}
