//! Fig. 6: MSE of mean estimation — the paper's headline comparison.
//! 16 panels: 4 datasets × 4 poison ranges; each panel sweeps
//! ε ∈ {1/4, 1/2, 1, 3/2, 2} for DAP_EMF / DAP_EMF* / DAP_CEMF* /
//! Ostrich / Trimming.

use crate::common::{
    build_population, mse_over_trials, sci, simulate_batch, stream_id, ExpOptions, PoiRange,
};
use dap_attack::Side;
use dap_core::{Dap, DapConfig, Scheme};
use dap_datasets::Dataset;
use dap_defenses::{MeanDefense, Ostrich, Trimming};
use dap_ldp::PiecewiseMechanism;

/// The Fig. 6 budget axis.
pub const EPSILONS: [f64; 5] = [0.25, 0.5, 1.0, 1.5, 2.0];

/// MSE of one DAP scheme on a (dataset, range, eps) cell.
pub fn dap_mse(
    dataset: Dataset,
    range: PoiRange,
    gamma: f64,
    eps: f64,
    scheme: Scheme,
    opts: &ExpOptions,
    stream: u64,
) -> f64 {
    mse_over_trials(opts, stream, |rng| {
        let (population, truth) = build_population(dataset, opts.n, gamma, rng);
        let cfg = DapConfig { max_d_out: opts.max_d_out, ..DapConfig::paper_default(eps, scheme) };
        let dap = Dap::new(cfg, PiecewiseMechanism::new);
        let out = dap.run(&population, &range.attack(), rng);
        (out.mean, truth)
    })
}

/// MSE of a single-batch defense on the same cell.
pub fn defense_mse(
    dataset: Dataset,
    range: PoiRange,
    gamma: f64,
    eps: f64,
    defense: &dyn MeanDefense,
    opts: &ExpOptions,
    stream: u64,
) -> f64 {
    mse_over_trials(opts, stream, |rng| {
        let (reports, truth) = simulate_batch(dataset, opts.n, gamma, eps, &range.attack(), rng);
        (defense.estimate_mean(&reports, rng), truth)
    })
}

/// Prints one panel (a dataset × range cell across the ε axis).
pub fn panel(dataset: Dataset, range: PoiRange, opts: &ExpOptions, base_stream: u64) {
    println!("-- {} , Poi{} (gamma = 0.25) --", dataset.label(), range.label());
    print!("{:<12}", "scheme");
    for eps in EPSILONS {
        print!(" {:>10}", format!("eps={eps}"));
    }
    println!();
    for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
        print!("{:<12}", scheme.label());
        for (ei, eps) in EPSILONS.into_iter().enumerate() {
            let mse = dap_mse(dataset, range, 0.25, eps, scheme, opts, base_stream + stream_id(&[si, ei]) % 1000);
            print!(" {:>10}", sci(mse));
        }
        println!();
    }
    for (di, defense) in [&Ostrich as &dyn MeanDefense, &Trimming::paper_default(Side::Right)]
        .into_iter()
        .enumerate()
    {
        print!("{:<12}", defense.label().split('(').next().expect("label"));
        for (ei, eps) in EPSILONS.into_iter().enumerate() {
            let mse = defense_mse(
                dataset,
                range,
                0.25,
                eps,
                defense,
                opts,
                base_stream + stream_id(&[90 + di, ei]) % 1000,
            );
            print!(" {:>10}", sci(mse));
        }
        println!();
    }
    println!();
}

/// Runs all 16 panels.
pub fn run(opts: &ExpOptions) {
    println!("== Fig. 6: MSE of mean estimation vs eps ==\n");
    for (di, dataset) in Dataset::ALL.into_iter().enumerate() {
        for (ri, range) in PoiRange::ALL.into_iter().enumerate() {
            panel(dataset, range, opts, stream_id(&[600, di, ri]));
        }
    }
    println!("expected shape: DAP family below Ostrich/Trimming except when poison hugs O at large eps (panels j, k, n).\n");
}
