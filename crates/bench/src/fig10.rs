//! Fig. 10: robustness to evasion — MSE vs the evasive fraction `a`
//! (ε = 1/2, γ = 0.25, decoys at −C/2, true poison on [C/2, C]).
//!
//! One cell per (dataset, a): all three schemes read one shared protocol
//! execution. The Eq. 20 bound row is a closed form rendered without a
//! cell.

use crate::cell::{AttackSpec, Cell, CellKind, ExperimentId, MechKind, SchemeSet};
use crate::common::{sci, ExpOptions};
use crate::engine::{run_cells, ResultMap};
use crate::{out, outln};
use dap_core::{Scheme, Weighting};
use dap_datasets::Dataset;
use dap_ldp::{Epsilon, PiecewiseMechanism};

/// The evasive-fraction axis.
pub const A_AXIS: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

/// Fixed budget and coalition proportion.
pub const EPS: f64 = 0.5;
pub const GAMMA: f64 = 0.25;

fn cell(dataset: Dataset, a: f64) -> Cell {
    Cell::new(
        ExperimentId::Fig10,
        dataset.label(),
        CellKind::PmMse {
            dataset,
            gamma: GAMMA,
            eps: EPS,
            attack: AttackSpec::Evasion { a },
            schemes: SchemeSet::All,
            defenses: false,
            weighting: Weighting::AlgorithmFive,
            mechanism: MechKind::Pm,
        },
    )
}

/// One cell per dataset × evasive fraction.
pub fn cells(_opts: &ExpOptions) -> Vec<Cell> {
    Dataset::ALL
        .into_iter()
        .flat_map(|ds| A_AXIS.into_iter().map(move |a| cell(ds, a)))
        .collect()
}

/// Renders the four dataset panels plus the Eq. 20 bound row.
pub fn render(opts: &ExpOptions, r: &ResultMap) -> String {
    let mut s = String::new();
    for (di, ds) in Dataset::ALL.into_iter().enumerate() {
        outln!(s, "== Fig. 10({}): MSE vs evasive fraction a ({}, eps = 1/2, gamma = 0.25) ==",
            char::from(b'a' + di as u8), ds.label());
        out!(s, "{:<12}", "scheme");
        for a in A_AXIS {
            out!(s, " {:>10}", format!("a={a}"));
        }
        outln!(s);
        for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
            out!(s, "{:<12}", scheme.label());
            for a in A_AXIS {
                out!(s, " {:>10}", sci(r.get(&cell(ds, a))[si]));
            }
            outln!(s);
        }
        // Eq. 20: the attacker's guaranteed utility loss from the decoys.
        let c = PiecewiseMechanism::new(Epsilon::of(EPS)).c();
        let m = (opts.n as f64 * GAMMA).round();
        let n = opts.n as f64 - m;
        out!(s, "{:<12}", "Eq.20 bound");
        for a in A_AXIS {
            let loss = m * a * (c - 0.0) / (m + n);
            out!(s, " {:>10}", sci(loss * loss));
        }
        outln!(s, "\n");
    }
    outln!(s, "expected shape: MSE low for small a, spikes when the side probe flips (a around 0.2-0.3), then falls again.\n");
    s
}

/// Enumerate → execute → print.
pub fn run(opts: &ExpOptions) {
    let cells = cells(opts);
    let results = run_cells(opts, &cells);
    print!("{}", render(opts, &ResultMap::from_results(&results)));
}
