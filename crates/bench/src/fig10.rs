//! Fig. 10: robustness to evasion — MSE vs the evasive fraction `a`
//! (ε = 1/2, γ = 0.25, decoys at −C/2, true poison on [C/2, C]).

use crate::common::{build_population, dap_config, mse_over_trials, sci, stream_id, ExpOptions};
use dap_attack::{Anchor, EvasionAttack, UniformAttack};
use dap_core::{Dap, Scheme};
use dap_datasets::Dataset;
use dap_ldp::{Epsilon, PiecewiseMechanism};

/// The evasive-fraction axis.
pub const A_AXIS: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

/// Runs the four dataset panels plus the Eq. 20 bound row.
pub fn run(opts: &ExpOptions) {
    let eps = 0.5;
    let gamma = 0.25;
    for (di, ds) in Dataset::ALL.into_iter().enumerate() {
        println!("== Fig. 10({}): MSE vs evasive fraction a ({}, eps = 1/2, gamma = 0.25) ==",
            char::from(b'a' + di as u8), ds.label());
        print!("{:<12}", "scheme");
        for a in A_AXIS {
            print!(" {:>10}", format!("a={a}"));
        }
        println!();
        for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
            print!("{:<12}", scheme.label());
            for (ai, a) in A_AXIS.into_iter().enumerate() {
                let mse = mse_over_trials(opts, stream_id(&[1000, di, si, ai]), |rng| {
                    let (population, truth) = build_population(ds, opts.n, gamma, rng);
                    let attack = EvasionAttack::new(
                        a,
                        Anchor::OfLower(0.5),
                        UniformAttack::of_upper(0.5, 1.0),
                    );
                    let out = Dap::new(dap_config(opts, eps, scheme), PiecewiseMechanism::new)
                        .expect("valid config")
                        .run(&population, &attack, rng)
                        .expect("valid run");
                    (out.mean, truth)
                });
                print!(" {:>10}", sci(mse));
            }
            println!();
        }
        // Eq. 20: the attacker's guaranteed utility loss from the decoys.
        let c = PiecewiseMechanism::new(Epsilon::of(eps)).c();
        let m = (opts.n as f64 * gamma).round();
        let n = opts.n as f64 - m;
        print!("{:<12}", "Eq.20 bound");
        for a in A_AXIS {
            let loss = m * a * (c - 0.0) / (m + n);
            print!(" {:>10}", sci(loss * loss));
        }
        println!("\n");
    }
    println!("expected shape: MSE low for small a, spikes when the side probe flips (a around 0.2-0.3), then falls again.\n");
}
