//! `experiments storm`: the synthetic client swarm behind the ingestion
//! reactor's perf claim.
//!
//! A storm run spawns a small in-process daemon fleet (journaled and
//! fsynced by default — the durable tier is where ingest bandwidth is
//! actually bound), then floods it with `connections × reports` seeded
//! sequenced batches from one client thread per connection, each keeping a
//! Go-Back-N window of frames in flight. Clients are throttle-aware: a
//! [`WireError::Throttled`] shed bounces every in-flight successor off the
//! replay guard as a sequence gap, so the client drains the window, sleeps
//! the server's `retry_after_ms` hint, and resends from the shed frame; a
//! dropped connection reconnects and resumes from the handshake's
//! acknowledged sequence. Every report therefore lands exactly once no
//! matter how hard the daemon sheds.
//!
//! Reports live on the dyadic lattice `m · 2⁻¹²`: partial sums of lattice
//! points are exactly representable in f64, so the expected per-group
//! histogram *and report sum* are bit-exact regardless of how the worker
//! pool interleaves connections. That is what lets the harness assert
//! `lost 0, dup 0` as a byte-equality between each daemon's pulled part
//! and a locally replayed twin — under saturation, not just in a quiet
//! unit test.
//!
//! The same run measures sustained reports/sec and p50/p99 per-frame ack
//! latency; `experiments storm --bench-json` runs the legacy
//! thread-per-connection baseline and the reactor back to back and writes
//! the comparison (`BENCH_serve.json`) that CI gates on.

use crate::serve::{ServeSpec, WireMech};
use dap_core::net::{
    Deadlines, Frame, ReactorOptions, ServeOptions, WireClient, WireError,
};
use dap_core::{DapError, DapSession, Scheme};
use dap_ldp::PiecewiseMechanism;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One storm's shape: the swarm, the fleet, and the serving mode.
#[derive(Debug, Clone)]
pub struct StormSpec {
    /// Client connections (each one thread, one sequencing channel).
    pub connections: usize,
    /// Reports each connection streams.
    pub reports: usize,
    /// Reports per `seq-batch` frame.
    pub batch: usize,
    /// Frames each client keeps in flight before collecting acks
    /// (Go-Back-N pipelining; `1` degenerates to request/reply).
    pub window: usize,
    /// In-process daemons; connection `i` targets daemon `i mod daemons`.
    pub daemons: usize,
    /// Seed of every client schedule (and the deployment plan).
    pub seed: u64,
    /// Journal + fsync each daemon (the durable tier, the default). The
    /// reactor's group commit amortizes the per-record fsync — which is
    /// exactly the contrast the benchmark exists to measure.
    pub journal: bool,
    /// `Some` serves the bounded-worker reactor with these bounds;
    /// `None` serves the legacy thread-per-connection baseline.
    pub reactor: Option<ReactorOptions>,
}

impl StormSpec {
    /// Storm-sized reactor bounds: one worker (the harness targets a
    /// single-core CI container, where a second worker only adds lock
    /// traffic), a queue well below the swarm's potential in-flight frame
    /// count (`connections × window`), and an aggressive 1 ms retry hint.
    /// Shrink `--queue-ops` further (as the CI smoke does) to force
    /// nonzero backpressure sheds.
    pub fn storm_reactor() -> ReactorOptions {
        ReactorOptions {
            queue_ops: 32,
            workers: 1,
            retry_after_ms: 1,
            ..ReactorOptions::default()
        }
    }

    /// The deployment the fleet serves: PM at the paper's ε = 1/4, with a
    /// user count sized so every group's quota comfortably holds the
    /// swarm's reports.
    pub fn deployment(&self) -> ServeSpec {
        ServeSpec {
            mech: WireMech::Pm,
            eps: 0.25,
            eps0: 1.0 / 16.0,
            users: (2 * self.connections * self.reports).max(300),
            seed: self.seed,
            max_d_out: 16,
            secagg: None,
        }
    }

    fn validate(&self) -> Result<(), String> {
        if self.connections == 0 || self.reports == 0 || self.batch == 0 || self.window == 0
        {
            return Err(
                "storm needs nonzero --connections, --reports, --batch and --window".into()
            );
        }
        if self.daemons == 0 {
            return Err("storm needs at least one daemon".into());
        }
        Ok(())
    }
}

/// What one storm run measured. `lost`/`dup` are report-count deltas
/// against the locally replayed twin (both zero on a correct run; the
/// part comparison is bitwise, so even a zero-delta float divergence
/// fails the run as `diverged`).
#[derive(Debug, Clone)]
pub struct StormStats {
    /// `"reactor"` or `"legacy"`.
    pub mode: &'static str,
    /// Reports that landed (always `connections × reports` on success).
    pub reports: usize,
    /// Streaming wall clock, first byte to last ack, in milliseconds.
    pub wall_ms: f64,
    /// `reports / wall` — the headline number.
    pub reports_per_sec: f64,
    /// Median per-frame ack latency (one successful request/reply).
    pub p50_ms: f64,
    /// 99th-percentile per-frame ack latency.
    pub p99_ms: f64,
    /// Backpressure sheds observed by the fleet (reactor counters).
    pub throttled: u64,
    /// Client-side resends after a throttle.
    pub retries: usize,
    /// Client reconnects after a dropped connection.
    pub reconnects: usize,
    /// Reports the fleet lost (expected − held, where positive).
    pub lost: usize,
    /// Reports the fleet duplicated (held − expected, where positive).
    pub dup: usize,
    /// The daemons' parts differed from the twin beyond report counts
    /// (bit-level divergence with matching tallies).
    pub diverged: bool,
}

impl StormStats {
    /// The two stdout lines CI greps (`lost 0, dup 0` is the zero-loss
    /// assertion; the reports/sec figure is the throughput floor).
    pub fn render(&self) -> String {
        format!(
            "storm[{}]: {} reports in {:.1} ms -> {:.0} reports/sec, \
             p50 {:.2} ms, p99 {:.2} ms\n\
             storm[{}]: throttled {}, retries {}, reconnects {}, lost {}, dup {}",
            self.mode,
            self.reports,
            self.wall_ms,
            self.reports_per_sec,
            self.p50_ms,
            self.p99_ms,
            self.mode,
            self.throttled,
            self.retries,
            self.reconnects,
            self.lost,
            self.dup,
        )
    }

    /// Whether the run held the exactly-once contract.
    pub fn exact(&self) -> bool {
        self.lost == 0 && self.dup == 0 && !self.diverged
    }
}

/// Client `i`'s full schedule: `reports` lattice points (`m · 2⁻¹²`,
/// `|v| ≤ ½` — inside every group's domain) in `batch`-sized frames.
fn client_batches(spec: &StormSpec, client: usize) -> Vec<Vec<f64>> {
    let mut rng =
        StdRng::seed_from_u64(spec.seed ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut frames = Vec::with_capacity(spec.reports.div_ceil(spec.batch));
    let mut left = spec.reports;
    while left > 0 {
        let n = left.min(spec.batch);
        frames.push(
            (0..n).map(|_| rng.gen_range(-2048i64..2048) as f64 / 4096.0).collect(),
        );
        left -= n;
    }
    frames
}

/// Client `i`'s sequencing channel (distinct per client, stable per seed).
fn client_channel(client: usize) -> u64 {
    0x5702_0000 + client as u64
}

/// What one client thread observed.
struct ClientOutcome {
    /// Per-acked-frame round-trip latencies, milliseconds.
    latencies: Vec<f64>,
    /// Resends after a throttle.
    retries: usize,
    /// Reconnects after a transport failure.
    reconnects: usize,
}

/// Streams one client's schedule with a Go-Back-N window, absorbing
/// throttles and reconnects.
///
/// Up to `window` frames ride the socket before the first ack is
/// collected; the server replies strictly in order. When frame `base` is
/// shed ([`WireError::Throttled`]), the replay guard turns every in-flight
/// successor into a [`DapError::SequenceGap`] rejection (the session
/// admits only `last + 1`), so the client drains those bounces, sleeps the
/// strictest `retry_after_ms` hint it saw, and resends from `base` — the
/// guard makes over-delivery impossible and the rewind makes loss
/// impossible. A dropped connection reconnects and resyncs the window
/// from the handshake's acknowledged sequence.
fn run_client(
    addr: &str,
    digest: u64,
    group: usize,
    channel: u64,
    frames: &[Vec<f64>],
    window: usize,
) -> Result<ClientOutcome, String> {
    let deadlines = Deadlines::all(Duration::from_secs(30));
    let connect = || {
        WireClient::connect_retry_with(addr, 200, Duration::from_millis(25), &deadlines)
            .map_err(|e| format!("storm client cannot reach {addr}: {e}"))
    };
    let mut c = connect()?;
    let (_, acked) = c.hello_channel(digest, channel).map_err(|e| e.to_string())?;
    let mut out = ClientOutcome { latencies: Vec::new(), retries: 0, reconnects: 0 };
    let window = window.max(1) as u64;
    let total = frames.len() as u64;
    // `base` is the lowest unacked sequence, `next` the next to transmit;
    // sequences are 1-based and `sent_at` holds the send instant of every
    // in-flight frame (`base..next`).
    let mut base = acked + 1;
    let mut next = base;
    let mut sent_at: VecDeque<Instant> = VecDeque::with_capacity(window as usize);
    while base <= total {
        // Reconnect-and-resync on any transport failure, wherever it
        // struck: whatever the handshake acknowledges is what landed.
        let mut resync = false;
        if next <= total && next < base + window {
            let frame = Frame::IngestBatchSeq {
                channel,
                seq: next,
                group,
                reports: frames[(next - 1) as usize].clone(),
            };
            match c.send_frame(&frame) {
                Ok(()) => {
                    sent_at.push_back(Instant::now());
                    next += 1;
                }
                Err(WireError::Timeout { .. } | WireError::Io { .. }) => resync = true,
                Err(other) => {
                    return Err(format!("storm client hit a fatal error: {other}"));
                }
            }
        } else {
            match c.recv_reply() {
                Ok(Frame::Ok) => {
                    let sent = sent_at.pop_front().expect("an in-flight frame");
                    out.latencies.push(sent.elapsed().as_secs_f64() * 1e3);
                    base += 1;
                }
                // The replay guard proves a resent frame already landed.
                Err(WireError::Rejected(DapError::DuplicateSequence { .. })) => {
                    sent_at.pop_front();
                    base += 1;
                }
                Err(
                    shed @ (WireError::Throttled { .. }
                    | WireError::Rejected(DapError::SequenceGap { .. })),
                ) => {
                    // Shed (or bounced behind a shed): drain the replies
                    // still owed for this window — all gap rejections or
                    // further throttles — then rewind and resend.
                    let mut hint_ms = match shed {
                        WireError::Throttled { retry_after_ms } => retry_after_ms,
                        _ => 0,
                    };
                    let mut owed = next - base - 1;
                    while owed > 0 && !resync {
                        match c.recv_reply() {
                            Ok(_) | Err(WireError::Rejected(_)) => owed -= 1,
                            Err(WireError::Throttled { retry_after_ms }) => {
                                hint_ms = hint_ms.max(retry_after_ms);
                                owed -= 1;
                            }
                            Err(WireError::Timeout { .. } | WireError::Io { .. }) => {
                                resync = true;
                            }
                            Err(other) => {
                                return Err(format!(
                                    "storm client hit a fatal error: {other}"
                                ));
                            }
                        }
                    }
                    out.retries += (next - base) as usize;
                    if !resync {
                        std::thread::sleep(Duration::from_millis(hint_ms.max(1)));
                        next = base;
                        sent_at.clear();
                    }
                }
                Err(WireError::Timeout { .. } | WireError::Io { .. }) => resync = true,
                Ok(other) => {
                    return Err(format!(
                        "storm client got an unexpected '{}' reply",
                        other.tag()
                    ));
                }
                Err(other) => {
                    return Err(format!("storm client hit a fatal error: {other}"));
                }
            }
        }
        if resync {
            out.reconnects += 1;
            c = connect()?;
            let (_, last) = c.hello_channel(digest, channel).map_err(|e| e.to_string())?;
            base = last + 1;
            next = base;
            sent_at.clear();
        }
    }
    Ok(out)
}

/// Sorted-percentile helper (`q` in `[0, 1]`).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let i = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[i]
}

/// Runs one storm: spawn the fleet, flood it, verify exactly-once against
/// the replayed twin, tear everything down.
pub fn run_storm(spec: &StormSpec) -> Result<StormStats, String> {
    spec.validate()?;
    let deployment = spec.deployment();
    let digest = deployment.state_digest()?;
    let session = deployment_session(&deployment)?;
    let groups = session.group_count();
    let mode: &'static str = if spec.reactor.is_some() { "reactor" } else { "legacy" };

    // The fleet: one daemon thread each, journaled into disposable dirs
    // when durability is on.
    let mut addrs = Vec::with_capacity(spec.daemons);
    let mut dirs: Vec<Option<PathBuf>> = Vec::with_capacity(spec.daemons);
    let mut handles = Vec::with_capacity(spec.daemons);
    for d in 0..spec.daemons {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("cannot bind a storm daemon: {e}"))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?.to_string();
        let options = ServeOptions {
            reactor: spec.reactor.clone(),
            ..ServeOptions::default()
        };
        let dir = if spec.journal {
            let dir = std::env::temp_dir().join(format!(
                "dap-storm-{}-{mode}-{d}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            Some(dir)
        } else {
            None
        };
        let serve_spec = deployment;
        let serve_dir = dir.clone();
        handles.push(std::thread::spawn(move || match &serve_dir {
            Some(dir) => serve_spec.serve_durable_with(listener, dir, 0, true, options),
            None => serve_spec.serve_with(listener, options),
        }));
        addrs.push(addr);
        dirs.push(dir);
    }

    // The swarm: one thread per connection, client `i` on daemon
    // `i mod daemons`, group `i mod groups`, its own channel.
    let schedules: Vec<Vec<Vec<f64>>> =
        (0..spec.connections).map(|i| client_batches(spec, i)).collect();
    let start = Instant::now();
    let outcomes: Vec<Result<ClientOutcome, String>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..spec.connections)
            .map(|i| {
                let addr = addrs[i % spec.daemons].clone();
                let frames = &schedules[i];
                let window = spec.window;
                scope.spawn(move || {
                    run_client(&addr, digest, i % groups, client_channel(i), frames, window)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("storm client thread")).collect()
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut latencies = Vec::new();
    let mut retries = 0usize;
    let mut reconnects = 0usize;
    for outcome in outcomes {
        let outcome = outcome?;
        latencies.extend(outcome.latencies);
        retries += outcome.retries;
        reconnects += outcome.reconnects;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));

    // Verification: replay each daemon's share of the swarm into a local
    // twin (client-major order — lattice sums make order irrelevant down
    // to the bit) and require the pulled part byte-equal.
    let mut throttled = 0u64;
    let mut lost = 0usize;
    let mut dup = 0usize;
    let mut diverged = false;
    for (d, addr) in addrs.iter().enumerate() {
        let mut twin = deployment_session(&deployment)?;
        for i in (0..spec.connections).filter(|i| i % spec.daemons == d) {
            for (f, frame) in schedules[i].iter().enumerate() {
                twin.ingest_batch_seq(client_channel(i), f as u64 + 1, i % groups, frame)
                    .map_err(|e| format!("twin replay rejected a frame: {e}"))?;
            }
        }
        let mut c = WireClient::connect_retry(addr, 50, Duration::from_millis(20))
            .map_err(|e| format!("verification connect failed: {e}"))?;
        c.hello(digest).map_err(|e| e.to_string())?;
        let part = c.pull_part().map_err(|e| e.to_string())?;
        let expected = twin.export_part();
        if part != expected {
            for (got, want) in part.groups.iter().zip(&expected.groups) {
                lost += want.n_reports.saturating_sub(got.n_reports);
                dup += got.n_reports.saturating_sub(want.n_reports);
            }
            if lost == 0 && dup == 0 {
                diverged = true;
            }
        }
        if let Ok((_, _, _, Some(counters))) = c.status_counters() {
            if let Some(reactor) = counters.reactor {
                throttled += reactor.throttled;
            }
        }
        c.shutdown().map_err(|e| e.to_string())?;
    }
    for handle in handles {
        handle.join().map_err(|_| "storm daemon thread panicked".to_string())??;
    }
    for dir in dirs.into_iter().flatten() {
        let _ = std::fs::remove_dir_all(dir);
    }

    let total = spec.connections * spec.reports;
    Ok(StormStats {
        mode,
        reports: total,
        wall_ms,
        reports_per_sec: total as f64 / (wall_ms / 1e3),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        throttled,
        retries,
        reconnects,
        lost,
        dup,
        diverged,
    })
}

fn deployment_session(spec: &ServeSpec) -> Result<DapSession<PiecewiseMechanism>, String> {
    DapSession::new(spec.session_config(), spec.plan(), PiecewiseMechanism::new)
        .map_err(|e| e.to_string())
}

/// The `# dap-wire storm:` stdout header.
pub fn storm_header(spec: &StormSpec) -> String {
    format!(
        "# dap-wire storm: daemons {}, connections {}, reports {}, batch {}, window {}, \
         seed {}, journal {}",
        spec.daemons,
        spec.connections,
        spec.reports,
        spec.batch,
        spec.window,
        spec.seed,
        if spec.journal { "sync" } else { "none" },
    )
}

/// `BENCH_serve.json`: the reactor-vs-legacy comparison CI gates on.
/// Both throughput numbers are per-mode medians over the bench run's
/// trials; `speedup` is their ratio (the ingestion reactor's headline
/// claim).
pub fn write_storm_bench_json(
    path: &str,
    spec: &StormSpec,
    reactor: &StormStats,
    legacy: &StormStats,
) -> std::io::Result<()> {
    use std::io::Write as _;
    let speedup = reactor.reports_per_sec / legacy.reports_per_sec;
    let json = format!(
        "{{\n  \"experiment\": \"storm\",\n  \"daemons\": {},\n  \"connections\": {},\n  \
         \"reports\": {},\n  \"batch\": {},\n  \"window\": {},\n  \"seed\": {},\n  \
         \"journal\": \"{}\",\n  \
         \"reactor_reports_per_sec\": {:.0},\n  \"legacy_reports_per_sec\": {:.0},\n  \
         \"speedup\": {:.2},\n  \"reactor_p50_ms\": {:.3},\n  \"reactor_p99_ms\": {:.3},\n  \
         \"legacy_p50_ms\": {:.3},\n  \"legacy_p99_ms\": {:.3},\n  \"throttled\": {}\n}}\n",
        spec.daemons,
        spec.connections,
        spec.reports,
        spec.batch,
        spec.window,
        spec.seed,
        if spec.journal { "sync" } else { "none" },
        reactor.reports_per_sec,
        legacy.reports_per_sec,
        speedup,
        reactor.p50_ms,
        reactor.p99_ms,
        legacy.p50_ms,
        legacy.p99_ms,
        reactor.throttled,
    );
    let mut file = std::fs::File::create(path)?;
    file.write_all(json.as_bytes())
}

/// The scheme list a storm deployment would finalize (unused by the storm
/// itself — exposed so smoke tests can finalize a drained fleet).
pub fn storm_schemes() -> Vec<Scheme> {
    Scheme::ALL.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_lattice_valued() {
        let spec = StormSpec {
            connections: 3,
            reports: 10,
            batch: 4,
            window: 8,
            daemons: 1,
            seed: 42,
            journal: false,
            reactor: Some(StormSpec::storm_reactor()),
        };
        let a = client_batches(&spec, 1);
        let b = client_batches(&spec, 1);
        assert_eq!(a, b, "schedules must replay exactly");
        assert_ne!(a, client_batches(&spec, 2), "clients get distinct streams");
        let frames: usize = a.iter().map(Vec::len).sum();
        assert_eq!(frames, 10);
        assert_eq!(a[0].len(), 4);
        assert_eq!(a.last().unwrap().len(), 2, "tail frame carries the remainder");
        for v in a.iter().flatten() {
            assert_eq!(v * 4096.0, (v * 4096.0).round(), "{v} is off the dyadic lattice");
            assert!(v.abs() <= 0.5);
        }
    }

    #[test]
    fn percentiles_pick_sorted_ranks() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 0.5), 6.0);
        assert_eq!(percentile(&sorted, 1.0), 10.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
