//! Fig. 5: accuracy of the Byzantine-proportion estimate `γ̂` from EMF.
//!
//! (a) `|γ̂ − γ|` vs ε at γ = 0.1 across the four poison ranges (Taxi);
//! (b) the same at γ = 0.4;
//! (c) the false-positive rate (γ = 0) across the four datasets;
//! (d) `γ̂` under an input manipulation attack (γ = 0.25) across datasets.

use crate::common::{simulate_batch, stream_id, ExpOptions, PoiRange};
use dap_attack::InputManipulationAttack;
use dap_datasets::Dataset;
use dap_emf::{ByzantineFeatures, EmfConfig};
use dap_estimation::rng::derive;

/// The Fig. 5 budget axis.
pub const EPSILONS: [f64; 6] = [1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0, 1.0, 2.0];

fn gamma_hat(
    dataset: Dataset,
    gamma: f64,
    eps: f64,
    attack: &dyn dap_attack::Attack,
    opts: &ExpOptions,
    stream: u64,
) -> f64 {
    let mut acc = 0.0;
    for t in 0..opts.trials {
        let mut rng = derive(opts.seed, stream.wrapping_mul(7919).wrapping_add(t as u64));
        let (reports, _) = simulate_batch(dataset, opts.n, gamma, eps, attack, &mut rng);
        let cfg = EmfConfig::capped(reports.len(), eps, opts.max_d_out);
        let mech = dap_ldp::PiecewiseMechanism::new(dap_ldp::Epsilon::of(eps));
        let features = ByzantineFeatures::probe(&mech, &reports, 0.0, &cfg);
        acc += features.gamma;
    }
    acc / opts.trials as f64
}

/// Runs all four panels.
pub fn run(opts: &ExpOptions) {
    for (panel, gamma) in [("a", 0.1), ("b", 0.4)] {
        println!("== Fig. 5({panel}): |gamma_hat - gamma| vs eps (Taxi, gamma = {gamma}) ==");
        print!("{:<10}", "Poi");
        for eps in EPSILONS {
            print!(" {:>9}", format!("{eps:.4}"));
        }
        println!();
        for (ri, range) in PoiRange::ALL.into_iter().enumerate() {
            print!("{:<10}", range.label());
            for (ei, eps) in EPSILONS.into_iter().enumerate() {
                let g = gamma_hat(
                    Dataset::Taxi,
                    gamma,
                    eps,
                    &range.attack(),
                    opts,
                    stream_id(&[500, ri, ei, gamma.to_bits() as usize]),
                );
                print!(" {:>9.4}", (g - gamma).abs());
            }
            println!();
        }
        println!("expected shape: error shrinks as eps -> 0 (Theorem 3).\n");
    }

    println!("== Fig. 5(c): false-positive rate (gamma = 0) ==");
    print!("{:<12}", "dataset");
    for eps in EPSILONS {
        print!(" {:>9}", format!("{eps:.4}"));
    }
    println!();
    for (di, ds) in Dataset::ALL.into_iter().enumerate() {
        print!("{:<12}", ds.label());
        for (ei, eps) in EPSILONS.into_iter().enumerate() {
            let g = gamma_hat(
                ds,
                0.0,
                eps,
                &dap_attack::NoAttack,
                opts,
                stream_id(&[510, di, ei]),
            );
            print!(" {:>9.4}", g);
        }
        println!();
    }
    println!("expected shape: small (paper: 0.02-0.04 at eps = 1/16).\n");

    println!("== Fig. 5(d): gamma_hat under IMA (g = 1, gamma = 0.25) ==");
    print!("{:<12}", "dataset");
    for eps in EPSILONS {
        print!(" {:>9}", format!("{eps:.4}"));
    }
    println!();
    for (di, ds) in Dataset::ALL.into_iter().enumerate() {
        print!("{:<12}", ds.label());
        for (ei, eps) in EPSILONS.into_iter().enumerate() {
            let g = gamma_hat(
                ds,
                0.25,
                eps,
                &InputManipulationAttack { g: 1.0 },
                opts,
                stream_id(&[520, di, ei]),
            );
            print!(" {:>9.4}", g);
        }
        println!();
    }
    println!("expected shape: gamma_hat stays far below 0.25 — the IMA hides from EMF (paper: 0.03-0.04).\n");
}
