//! Fig. 5: accuracy of the Byzantine-proportion estimate `γ̂` from EMF.
//!
//! (a) `|γ̂ − γ|` vs ε at γ = 0.1 across the four poison ranges (Taxi);
//! (b) the same at γ = 0.4;
//! (c) the false-positive rate (γ = 0) across the four datasets;
//! (d) `γ̂` under an input manipulation attack (γ = 0.25) across datasets.

use crate::cell::{AttackSpec, Cell, CellKind, ExperimentId};
use crate::common::{ExpOptions, PoiRange};
use crate::engine::{run_cells, ResultMap};
use crate::{out, outln};
use dap_datasets::Dataset;

/// The Fig. 5 budget axis.
pub const EPSILONS: [f64; 6] = [1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0, 1.0 / 2.0, 1.0, 2.0];

/// Panels (a)(b) gammas.
pub const AB_GAMMAS: [(&str, f64); 2] = [("a", 0.1), ("b", 0.4)];

fn ab_cell(panel: &'static str, gamma: f64, range: PoiRange, eps: f64) -> Cell {
    Cell::new(
        ExperimentId::Fig5,
        panel,
        CellKind::GammaHat {
            dataset: Dataset::Taxi,
            gamma,
            eps,
            attack: AttackSpec::Poi(range),
            abs_err: true,
        },
    )
}

fn c_cell(dataset: Dataset, eps: f64) -> Cell {
    Cell::new(
        ExperimentId::Fig5,
        "c",
        CellKind::GammaHat { dataset, gamma: 0.0, eps, attack: AttackSpec::None, abs_err: false },
    )
}

fn d_cell(dataset: Dataset, eps: f64) -> Cell {
    Cell::new(
        ExperimentId::Fig5,
        "d",
        CellKind::GammaHat {
            dataset,
            gamma: 0.25,
            eps,
            attack: AttackSpec::Ima { g: 1.0 },
            abs_err: false,
        },
    )
}

/// All four panels' cells.
pub fn cells(_opts: &ExpOptions) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (panel, gamma) in AB_GAMMAS {
        for range in PoiRange::ALL {
            for eps in EPSILONS {
                cells.push(ab_cell(panel, gamma, range, eps));
            }
        }
    }
    for ds in Dataset::ALL {
        for eps in EPSILONS {
            cells.push(c_cell(ds, eps));
        }
    }
    for ds in Dataset::ALL {
        for eps in EPSILONS {
            cells.push(d_cell(ds, eps));
        }
    }
    cells
}

/// Renders all four panels.
pub fn render(_opts: &ExpOptions, r: &ResultMap) -> String {
    let mut s = String::new();
    for (panel, gamma) in AB_GAMMAS {
        outln!(s, "== Fig. 5({panel}): |gamma_hat - gamma| vs eps (Taxi, gamma = {gamma}) ==");
        out!(s, "{:<10}", "Poi");
        for eps in EPSILONS {
            out!(s, " {:>9}", format!("{eps:.4}"));
        }
        outln!(s);
        for range in PoiRange::ALL {
            out!(s, "{:<10}", range.label());
            for eps in EPSILONS {
                out!(s, " {:>9.4}", r.get(&ab_cell(panel, gamma, range, eps))[0]);
            }
            outln!(s);
        }
        outln!(s, "expected shape: error shrinks as eps -> 0 (Theorem 3).\n");
    }

    outln!(s, "== Fig. 5(c): false-positive rate (gamma = 0) ==");
    out!(s, "{:<12}", "dataset");
    for eps in EPSILONS {
        out!(s, " {:>9}", format!("{eps:.4}"));
    }
    outln!(s);
    for ds in Dataset::ALL {
        out!(s, "{:<12}", ds.label());
        for eps in EPSILONS {
            out!(s, " {:>9.4}", r.get(&c_cell(ds, eps))[0]);
        }
        outln!(s);
    }
    outln!(s, "expected shape: small (paper: 0.02-0.04 at eps = 1/16).\n");

    outln!(s, "== Fig. 5(d): gamma_hat under IMA (g = 1, gamma = 0.25) ==");
    out!(s, "{:<12}", "dataset");
    for eps in EPSILONS {
        out!(s, " {:>9}", format!("{eps:.4}"));
    }
    outln!(s);
    for ds in Dataset::ALL {
        out!(s, "{:<12}", ds.label());
        for eps in EPSILONS {
            out!(s, " {:>9.4}", r.get(&d_cell(ds, eps))[0]);
        }
        outln!(s);
    }
    outln!(s, "expected shape: gamma_hat stays far below 0.25 — the IMA hides from EMF (paper: 0.03-0.04).\n");
    s
}

/// Enumerate → execute → print.
pub fn run(opts: &ExpOptions) {
    let cells = cells(opts);
    let results = run_cells(opts, &cells);
    print!("{}", render(opts, &ResultMap::from_results(&results)));
}
