//! Fig. 7: robustness on Taxi at ε = 1 — (a)(b) MSE vs the Byzantine
//! proportion γ; (c)(d) MSE vs the poison-value distribution.

use crate::common::{
    build_population, mse_over_trials, sci, simulate_batch, stream_id, ExpOptions, PoiRange,
};
use dap_attack::{Anchor, Attack, BetaShapedAttack, GaussianAttack, Side, UniformAttack};
use dap_core::{Dap, DapConfig, Scheme};
use dap_datasets::Dataset;
use dap_defenses::{MeanDefense, Ostrich, Trimming};
use dap_ldp::PiecewiseMechanism;

/// The γ axis of panels (a)(b).
pub const GAMMAS: [f64; 4] = [0.05, 0.10, 0.30, 0.40];

fn attack_for(range: PoiRange, shape: &str) -> Box<dyn Attack> {
    let (a, b) = range.fractions();
    let lo = if a == 0.0 { Anchor::Abs(0.0) } else { Anchor::OfUpper(a) };
    let hi = Anchor::OfUpper(b);
    match shape {
        "Uniform" => Box::new(UniformAttack::new(lo, hi)),
        "Gaussian" => Box::new(GaussianAttack::new(lo, hi)),
        "Beta(1,6)" => Box::new(BetaShapedAttack::new(1.0, 6.0, lo, hi)),
        "Beta(6,1)" => Box::new(BetaShapedAttack::new(6.0, 1.0, lo, hi)),
        other => unreachable!("unknown shape {other}"),
    }
}

fn row(
    label: &str,
    cells: impl Iterator<Item = f64>,
) {
    print!("{label:<12}");
    for mse in cells {
        print!(" {:>10}", sci(mse));
    }
    println!();
}

/// Runs all four panels.
pub fn run(opts: &ExpOptions) {
    let eps = 1.0;
    for (panel, range) in [("a", PoiRange::LowerHalf), ("b", PoiRange::TopHalf)] {
        println!("== Fig. 7({panel}): MSE vs gamma (Taxi, eps = 1, Poi{}) ==", range.label());
        print!("{:<12}", "scheme");
        for g in GAMMAS {
            print!(" {:>10}", format!("{:.0}%", g * 100.0));
        }
        println!();
        for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
            row(
                scheme.label(),
                GAMMAS.iter().enumerate().map(|(gi, &gamma)| {
                    mse_over_trials(opts, stream_id(&[700, si, gi, range as usize]), |rng| {
                        let (population, truth) =
                            build_population(Dataset::Taxi, opts.n, gamma, rng);
                        let cfg = DapConfig {
                            max_d_out: opts.max_d_out,
                            ..DapConfig::paper_default(eps, scheme)
                        };
                        let out =
                            Dap::new(cfg, PiecewiseMechanism::new).run(&population, &range.attack(), rng);
                        (out.mean, truth)
                    })
                }),
            );
        }
        for (di, defense) in
            [&Ostrich as &dyn MeanDefense, &Trimming::paper_default(Side::Right)]
                .into_iter()
                .enumerate()
        {
            row(
                defense.label().split('(').next().expect("label"),
                GAMMAS.iter().enumerate().map(|(gi, &gamma)| {
                    mse_over_trials(opts, stream_id(&[710, di, gi, range as usize]), |rng| {
                        let (reports, truth) = simulate_batch(
                            Dataset::Taxi,
                            opts.n,
                            gamma,
                            eps,
                            &range.attack(),
                            rng,
                        );
                        (defense.estimate_mean(&reports, rng), truth)
                    })
                }),
            );
        }
        println!();
    }

    const SHAPES: [&str; 4] = ["Uniform", "Gaussian", "Beta(1,6)", "Beta(6,1)"];
    for (panel, range) in [("c", PoiRange::LowerHalf), ("d", PoiRange::TopHalf)] {
        println!(
            "== Fig. 7({panel}): MSE vs poison distribution (Taxi, eps = 1, gamma = 0.25, Poi{}) ==",
            range.label()
        );
        print!("{:<12}", "scheme");
        for s in SHAPES {
            print!(" {:>10}", s);
        }
        println!();
        for (si, scheme) in Scheme::ALL.into_iter().enumerate() {
            row(
                scheme.label(),
                SHAPES.iter().enumerate().map(|(shi, shape)| {
                    let attack = attack_for(range, shape);
                    mse_over_trials(opts, stream_id(&[720, si, shi, range as usize]), |rng| {
                        let (population, truth) =
                            build_population(Dataset::Taxi, opts.n, 0.25, rng);
                        let cfg = DapConfig {
                            max_d_out: opts.max_d_out,
                            ..DapConfig::paper_default(eps, scheme)
                        };
                        let out = Dap::new(cfg, PiecewiseMechanism::new)
                            .run(&population, attack.as_ref(), rng);
                        (out.mean, truth)
                    })
                }),
            );
        }
        for (di, defense) in
            [&Ostrich as &dyn MeanDefense, &Trimming::paper_default(Side::Right)]
                .into_iter()
                .enumerate()
        {
            row(
                defense.label().split('(').next().expect("label"),
                SHAPES.iter().enumerate().map(|(shi, shape)| {
                    let attack = attack_for(range, shape);
                    mse_over_trials(opts, stream_id(&[730, di, shi, range as usize]), |rng| {
                        let (reports, truth) = simulate_batch(
                            Dataset::Taxi,
                            opts.n,
                            0.25,
                            eps,
                            attack.as_ref(),
                            rng,
                        );
                        (defense.estimate_mean(&reports, rng), truth)
                    })
                }),
            );
        }
        println!();
    }
    println!("expected shape: DAP schemes lowest across gamma and poison shapes (Fig. 7).\n");
}
