//! Fig. 7: robustness on Taxi at ε = 1 — (a)(b) MSE vs the Byzantine
//! proportion γ; (c)(d) MSE vs the poison-value distribution.
//!
//! This driver is the perf-tracked hot path (`BENCH_fig7.json`): every
//! column is one cell whose three DAP schemes read **one shared protocol
//! execution** and whose two single-batch defenses read one shared
//! full-budget batch. The per-trial Taxi populations come from the
//! process-wide population cache, so every column at one γ (across panels,
//! ranges and poison shapes) shares them — common random numbers over the
//! honest data as well as across estimators.

use crate::cell::{AttackSpec, Cell, CellKind, ExperimentId, MechKind, PoiShape, SchemeSet};
use crate::common::{sci, ExpOptions, PoiRange};
use crate::engine::{run_cells, ResultMap};
use crate::{out, outln};
use dap_core::{Scheme, Weighting};
use dap_datasets::Dataset;

/// The γ axis of panels (a)(b).
pub const GAMMAS: [f64; 4] = [0.05, 0.10, 0.30, 0.40];

/// Panels (a)(b): poison range per panel.
pub const AB_PANELS: [(&str, PoiRange); 2] =
    [("a", PoiRange::LowerHalf), ("b", PoiRange::TopHalf)];

/// Panels (c)(d): poison range per panel.
pub const CD_PANELS: [(&str, PoiRange); 2] =
    [("c", PoiRange::LowerHalf), ("d", PoiRange::TopHalf)];

fn column_kind(gamma: f64, attack: AttackSpec) -> CellKind {
    CellKind::PmMse {
        dataset: Dataset::Taxi,
        gamma,
        eps: 1.0,
        attack,
        schemes: SchemeSet::All,
        defenses: true,
        weighting: Weighting::AlgorithmFive,
        mechanism: MechKind::Pm,
    }
}

fn ab_cell(panel: &'static str, range: PoiRange, gamma: f64) -> Cell {
    Cell::new(ExperimentId::Fig7, panel, column_kind(gamma, AttackSpec::Poi(range)))
}

fn cd_cell(panel: &'static str, range: PoiRange, shape: PoiShape) -> Cell {
    Cell::new(ExperimentId::Fig7, panel, column_kind(0.25, AttackSpec::Shaped(shape, range)))
}

/// All four panels' cells (16 columns).
pub fn cells(_opts: &ExpOptions) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (panel, range) in AB_PANELS {
        for gamma in GAMMAS {
            cells.push(ab_cell(panel, range, gamma));
        }
    }
    for (panel, range) in CD_PANELS {
        for shape in PoiShape::ALL {
            cells.push(cd_cell(panel, range, shape));
        }
    }
    cells
}

fn row_labels() -> Vec<String> {
    let mut labels: Vec<String> =
        Scheme::ALL.iter().map(|s| s.label().to_string()).collect();
    labels.push("Ostrich".into());
    labels.push("Trimming".into());
    labels
}

/// Renders a (row = estimator) × (column = condition) MSE table.
fn render_table(headers: &[String], columns: &[&[f64]], s: &mut String) {
    out!(s, "{:<12}", "scheme");
    for h in headers {
        out!(s, " {:>10}", h);
    }
    outln!(s);
    for (ri, label) in row_labels().iter().enumerate() {
        out!(s, "{label:<12}");
        for col in columns {
            out!(s, " {:>10}", sci(col[ri]));
        }
        outln!(s);
    }
    outln!(s);
}

/// Renders all four panels.
pub fn render(_opts: &ExpOptions, r: &ResultMap) -> String {
    let mut s = String::new();
    for (panel, range) in AB_PANELS {
        outln!(s, "== Fig. 7({panel}): MSE vs gamma (Taxi, eps = 1, Poi{}) ==", range.label());
        let headers: Vec<String> =
            GAMMAS.iter().map(|g| format!("{:.0}%", g * 100.0)).collect();
        let columns: Vec<&[f64]> =
            GAMMAS.iter().map(|&g| r.get(&ab_cell(panel, range, g))).collect();
        render_table(&headers, &columns, &mut s);
    }
    for (panel, range) in CD_PANELS {
        outln!(
            s,
            "== Fig. 7({panel}): MSE vs poison distribution (Taxi, eps = 1, gamma = 0.25, Poi{}) ==",
            range.label()
        );
        let headers: Vec<String> = PoiShape::ALL.iter().map(|p| p.label().to_string()).collect();
        let columns: Vec<&[f64]> =
            PoiShape::ALL.iter().map(|&p| r.get(&cd_cell(panel, range, p))).collect();
        render_table(&headers, &columns, &mut s);
    }
    outln!(s, "expected shape: DAP schemes lowest across gamma and poison shapes (Fig. 7).\n");
    s
}

/// Enumerate → execute → print.
pub fn run(opts: &ExpOptions) {
    let cells = cells(opts);
    let results = run_cells(opts, &cells);
    print!("{}", render(opts, &ResultMap::from_results(&results)));
}
