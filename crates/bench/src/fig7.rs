//! Fig. 7: robustness on Taxi at ε = 1 — (a)(b) MSE vs the Byzantine
//! proportion γ; (c)(d) MSE vs the poison-value distribution.
//!
//! This driver is the perf-tracked hot path (`BENCH_fig7.json`): every cell
//! column evaluates all three DAP schemes on **one shared protocol
//! execution** (`Dap::run_schemes` — common random numbers) and both
//! single-batch defenses on one shared simulated batch, instead of
//! re-simulating per row.

use crate::common::{
    build_population, dap_config, mses_over_trials_indexed, perturb_all, sci, stream_id,
    ExpOptions, PoiRange,
};
use dap_core::Population;
use dap_estimation::rng::derive;
use dap_attack::{Anchor, Attack, BetaShapedAttack, GaussianAttack, Side, UniformAttack};
use dap_core::{Dap, Scheme};
use dap_datasets::Dataset;
use dap_defenses::{MeanDefense, Ostrich, Trimming};
use dap_ldp::{Epsilon, PiecewiseMechanism};

/// The γ axis of panels (a)(b).
pub const GAMMAS: [f64; 4] = [0.05, 0.10, 0.30, 0.40];

fn attack_for(range: PoiRange, shape: &str) -> Box<dyn Attack> {
    let (a, b) = range.fractions();
    let lo = if a == 0.0 { Anchor::Abs(0.0) } else { Anchor::OfUpper(a) };
    let hi = Anchor::OfUpper(b);
    match shape {
        "Uniform" => Box::new(UniformAttack::new(lo, hi)),
        "Gaussian" => Box::new(GaussianAttack::new(lo, hi)),
        "Beta(1,6)" => Box::new(BetaShapedAttack::new(1.0, 6.0, lo, hi)),
        "Beta(6,1)" => Box::new(BetaShapedAttack::new(6.0, 1.0, lo, hi)),
        other => unreachable!("unknown shape {other}"),
    }
}

/// Pre-generates the per-trial Taxi populations for one γ; every column at
/// this γ (across panels, ranges and poison shapes) shares them — common
/// random numbers over the honest data as well as across estimators.
fn taxi_populations(opts: &ExpOptions, gamma: f64) -> Vec<(Population, f64)> {
    (0..opts.trials)
        .map(|t| {
            let mut rng =
                derive(opts.seed, stream_id(&[740, (gamma * 100.0).round() as usize, t]));
            build_population(Dataset::Taxi, opts.n, gamma, &mut rng)
        })
        .collect()
}

/// All five compared estimators of one column, sharing one population per
/// trial: the three DAP schemes read one shared protocol execution, and the
/// two single-batch defenses read one shared full-budget batch drawn from
/// the same honest values. Returns MSEs in row order (schemes then
/// defenses).
fn column_mses(
    opts: &ExpOptions,
    pops: &[(Population, f64)],
    attack: &dyn Attack,
    stream: u64,
) -> Vec<f64> {
    let eps = 1.0;
    let trimming = Trimming::paper_default(Side::Right);
    mses_over_trials_indexed(opts, stream, Scheme::ALL.len() + 2, |t, rng| {
        let (population, truth) = &pops[t];
        // `scheme` in the config is ignored by `run_schemes`.
        let dap = Dap::new(dap_config(opts, eps, Scheme::Emf), PiecewiseMechanism::new)
            .expect("valid config");
        let outs = dap.run_schemes(population, attack, &Scheme::ALL, rng).expect("valid run");
        let mut estimates: Vec<f64> = outs.into_iter().map(|o| o.mean).collect();

        // The defenses see a plain single-batch collection at full budget
        // over the same honest values.
        let mech = PiecewiseMechanism::new(Epsilon::of(eps));
        let mut reports = perturb_all(&mech, &population.honest, rng);
        reports.extend(attack.reports(population.byzantine, &mech, rng));
        estimates.push(Ostrich.estimate_mean(&reports, rng));
        estimates.push(trimming.estimate_mean(&reports, rng));
        (estimates, *truth)
    })
}

fn row_labels() -> Vec<String> {
    let mut labels: Vec<String> =
        Scheme::ALL.iter().map(|s| s.label().to_string()).collect();
    labels.push("Ostrich".into());
    labels.push("Trimming".into());
    labels
}

/// Prints a (row = estimator) × (column = condition) MSE table.
fn print_table(headers: &[String], columns: &[Vec<f64>]) {
    print!("{:<12}", "scheme");
    for h in headers {
        print!(" {:>10}", h);
    }
    println!();
    for (ri, label) in row_labels().iter().enumerate() {
        print!("{label:<12}");
        for col in columns {
            print!(" {:>10}", sci(col[ri]));
        }
        println!();
    }
    println!();
}

/// Runs all four panels.
pub fn run(opts: &ExpOptions) {
    let gamma_pops: Vec<Vec<(Population, f64)>> =
        GAMMAS.iter().map(|&g| taxi_populations(opts, g)).collect();
    for (panel, range) in [("a", PoiRange::LowerHalf), ("b", PoiRange::TopHalf)] {
        println!("== Fig. 7({panel}): MSE vs gamma (Taxi, eps = 1, Poi{}) ==", range.label());
        let headers: Vec<String> =
            GAMMAS.iter().map(|g| format!("{:.0}%", g * 100.0)).collect();
        let columns: Vec<Vec<f64>> = GAMMAS
            .iter()
            .enumerate()
            .map(|(gi, _)| {
                column_mses(
                    opts,
                    &gamma_pops[gi],
                    &range.attack(),
                    stream_id(&[700, gi, range as usize]),
                )
            })
            .collect();
        print_table(&headers, &columns);
    }

    const SHAPES: [&str; 4] = ["Uniform", "Gaussian", "Beta(1,6)", "Beta(6,1)"];
    let quarter_pops = taxi_populations(opts, 0.25);
    for (panel, range) in [("c", PoiRange::LowerHalf), ("d", PoiRange::TopHalf)] {
        println!(
            "== Fig. 7({panel}): MSE vs poison distribution (Taxi, eps = 1, gamma = 0.25, Poi{}) ==",
            range.label()
        );
        let headers: Vec<String> = SHAPES.iter().map(|s| s.to_string()).collect();
        let columns: Vec<Vec<f64>> = SHAPES
            .iter()
            .enumerate()
            .map(|(shi, shape)| {
                let attack = attack_for(range, shape);
                column_mses(
                    opts,
                    &quarter_pops,
                    attack.as_ref(),
                    stream_id(&[720, shi, range as usize]),
                )
            })
            .collect();
        print_table(&headers, &columns);
    }
    println!("expected shape: DAP schemes lowest across gamma and poison shapes (Fig. 7).\n");
}
