//! Telemetry scenario with an adaptive coalition (§V-D): an OS vendor
//! collects a usage metric under LDP; the coalition knows DAP is deployed
//! and tries to flip the poisoned-side probe by sending a fraction `a` of
//! decoy reports to the opposite side.
//!
//! Reproduces the Fig. 10 phenomenon on a single dataset: small `a` is
//! ignored, a mid-range `a` flips the side probe and spikes the error, and
//! large `a` wastes so much of the coalition on decoys that the attack
//! weakens again. Also prints the paper's Eq. 20 utility-loss bound.
//!
//! Run with `cargo run --release --example telemetry_evasion`.

use differential_aggregation::prelude::*;

fn main() {
    let mut rng = estimation::rng::seeded(99);
    let eps = 0.5;
    let n = 40_000;
    let gamma = 0.25;

    let honest = Dataset::Retirement.generate_signed(n, &mut rng);
    let truth = estimation::stats::mean(&honest);
    let population = Population::with_gamma(honest, gamma);
    println!("true mean {truth:+.4}; coalition {:.0}%\n", gamma * 100.0);

    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>14}",
        "a", "side", "gamma_hat", "MSE", "Eq.20 bound"
    );
    for a in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let attack = EvasionAttack::new(
            a,
            Anchor::OfLower(0.5),
            UniformAttack::of_upper(0.5, 1.0),
        );
        let dap =
            Dap::new(DapConfig::paper_default(eps, Scheme::EmfStar), PiecewiseMechanism::new)
                .expect("valid config");
        let out = dap.run(&population, &attack, &mut rng).expect("valid run");
        let mse = (out.mean - truth) * (out.mean - truth);
        let c = PiecewiseMechanism::new(Epsilon::of(eps)).c();
        let bound = attack.utility_loss_bound(
            population.byzantine,
            population.honest.len(),
            c,
            0.0,
        );
        println!(
            "{a:>5.2} {:>10} {:>12.4} {:>12.3e} {:>14.4}",
            out.side.to_string(),
            out.gamma,
            mse,
            bound
        );
    }
}
