//! The multi-aggregator trust tier, end to end: three `dap-wire/v1`
//! share servers on loopback TCP, **none of which ever holds a report**.
//!
//! The coordinator acts as the dealer of the secret-sharing tier: every
//! report chunk is reduced to its per-group bucket-count contribution and
//! split into three additive shares over wrapping `u64` arithmetic
//! (pairwise seeded masks that cancel exactly on merge). Share server `j`
//! receives share `j` of every chunk and nothing else — its session, and
//! any journal it might keep, holds a uniformly-blinded vector.
//!
//! Mid-stream, share server 1 is shut down and never restarted. There is
//! no failover target for a share (share `j` only cancels against the
//! other masks), so the dealer re-derives the dead server's full intended
//! share from the mask seed — the seed-reveal path — and reconstructs
//! from the surviving quorum. The finalized outputs are **bit-identical**
//! to a session that ingested every report locally in plaintext.
//!
//! Run with `cargo run --release --example masked_aggregator`.

use differential_aggregation::prelude::*;
use differential_aggregation::protocol::net::{serve_session, WireClient};
use differential_aggregation::protocol::secagg::reconstruct;
use differential_aggregation::protocol::{
    MaskedGroup, MaskedPart, PartGroup, SecaggRole, SessionPart, ShareSplitter,
};
use std::net::TcpListener;

fn main() {
    const USERS: usize = 30_000;
    const K: usize = 3;
    const MASK_SEED: u64 = 0xda5e_ed11;
    let eps = 1.0;

    // 85% honest Beta(2,5)-shaped values in [-1, 1]; a 15% coalition
    // poisons the top half of each group's PM output domain.
    let mut rng = estimation::rng::seeded(23);
    let gamma = 0.15;
    let byzantine = (USERS as f64 * gamma).round() as usize;
    let honest: Vec<f64> = (0..USERS - byzantine)
        .map(|_| estimation::sampling::beta(2.0, 5.0, &mut rng) * 2.0 - 1.0)
        .collect();
    let truth = estimation::stats::mean(&honest);
    let attack = UniformAttack::of_upper(0.5, 1.0);

    let config = DapConfig::builder()
        .eps(eps)
        .scheme(Scheme::EmfStar)
        .max_d_out(64)
        .build()
        .expect("valid config");
    let plan = GroupPlan::build(USERS, config.eps, config.eps0, &mut rng);

    // Three share servers: daemon j serves share j of K. Their sessions
    // are masked — the plaintext ingest frames are refused typed at the
    // door, so not even a misrouted client can hand one a report.
    let mut addrs = Vec::new();
    let mut daemons = Vec::new();
    for index in 0..K {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        addrs.push(listener.local_addr().expect("local addr").to_string());
        let (cfg, plan) = (config, plan.clone());
        daemons.push(std::thread::spawn(move || {
            let session = DapSession::new_masked(
                cfg,
                plan,
                PiecewiseMechanism::new,
                SecaggRole { k: K, index },
            )
            .expect("valid masked session");
            serve_session(listener, session, |_| None).expect("share server serves")
        }));
    }

    // The dealer: a local session (the merge base and plaintext twin),
    // the splitter, and its seed commitment — announced in every masked
    // hello so two dealers with different seeds can never feed one fleet.
    let mut session =
        DapSession::new(config, plan, PiecewiseMechanism::new).expect("valid session");
    let digest = session.state_digest();
    let splitter = ShareSplitter::new(K, MASK_SEED).expect("valid share count");
    let commitment = splitter.commitment().digest();
    let mut clients: Vec<Option<WireClient>> = addrs
        .iter()
        .enumerate()
        .map(|(j, addr)| {
            let mut c = WireClient::connect(addr).expect("share server reachable");
            let (_, _, role) =
                c.hello_masked(digest, Some(0xdea1 + j as u64), commitment).expect("handshake");
            assert_eq!(role, Some((K, j)), "share server {j} advertises its role");
            Some(c)
        })
        .collect();

    // A share server must refuse a plaintext report — the wire-observable
    // "no daemon ever holds a report" check.
    let refusal = clients[0].as_mut().expect("live").ingest(0, 0.0);
    println!("plaintext report at a share server: {}\n", refusal.unwrap_err());

    // Simulate the population into per-group chunks first (report order
    // is part of the exactness contract), then deal shares chunk by
    // chunk. Every chunk is retained: the dealer needs the report sums
    // (which are not secret-shared) and, if a server dies, the seed
    // reveal re-derives its share from these contributions.
    let n_honest = honest.len();
    let mut group_chunks: Vec<Vec<Vec<f64>>> = Vec::new();
    for g in 0..session.group_count() {
        let assign = session.client_assignment(g).expect("known group");
        let mech = PiecewiseMechanism::new(assign.eps_t);
        let mut buf = vec![0.0f64; assign.k_t];
        let mut chunks: Vec<Vec<f64>> = Vec::new();
        let mut chunk: Vec<f64> = Vec::with_capacity(8192 + assign.k_t);
        let mut byz_members = 0usize;
        for i in 0..session.plan().assignment[g].len() {
            let user = session.plan().assignment[g][i];
            if user < n_honest {
                assign.perturb_into(&mech, honest[user], &mut buf, &mut rng);
                chunk.extend_from_slice(&buf);
                if chunk.len() >= 8192 {
                    chunks.push(std::mem::take(&mut chunk));
                }
            } else {
                byz_members += 1;
            }
        }
        let mut poison = vec![0.0f64; byz_members * assign.k_t];
        let n_poison = attack.reports_into(&mut poison, &mech, &mut rng);
        chunk.extend_from_slice(&poison[..n_poison]);
        chunks.push(chunk);
        group_chunks.push(chunks);
    }

    // Deal: chunk (g, c) becomes K additive shares of its bucket counts.
    // Halfway through, share server 1 goes down for good.
    let total_chunks: usize = group_chunks.iter().map(Vec::len).sum();
    let kill_at = total_chunks / 2;
    let mut contributions: Vec<Vec<Vec<u64>>> = Vec::new();
    let mut dealt = 0usize;
    let mut seq = [0u64; K];
    for (g, chunks) in group_chunks.iter().enumerate() {
        let resolution = session.histogram(g).counts.len();
        let mut per_chunk = Vec::with_capacity(chunks.len());
        for (c, chunk) in chunks.iter().enumerate() {
            let mut counts = vec![0u64; resolution];
            for &r in chunk {
                counts[session.bucket_of(g, r).expect("in-range report")] += 1;
            }
            for (j, share) in splitter.split(g as u64, c as u64, &counts).iter().enumerate() {
                if let Some(client) = clients[j].as_mut() {
                    seq[j] += 1;
                    client
                        .ingest_shares(0xdea1 + j as u64, seq[j], g, share)
                        .expect("share accepted");
                }
            }
            per_chunk.push(counts);
            dealt += 1;
            if dealt == kill_at {
                println!("killing share server 1 after {dealt}/{total_chunks} chunks …");
                clients[1].take().expect("still live").shutdown().expect("shutdown");
            }
        }
        contributions.push(per_chunk);
    }

    // Pull the surviving quorum's masked parts; re-derive the dead
    // server's full intended share from the mask seed. Summing what it
    // *would* have accumulated reproduces it exactly, masks included.
    let mut parts: Vec<MaskedPart> = Vec::with_capacity(K);
    for (j, client) in clients.iter_mut().enumerate() {
        if let Some(c) = client.as_mut() {
            parts.push(c.pull_masked().expect("masked part"));
            c.shutdown().expect("shutdown");
        } else {
            let mut groups: Vec<MaskedGroup> = contributions
                .iter()
                .enumerate()
                .map(|(g, _)| MaskedGroup {
                    counts: vec![0u64; session.histogram(g).counts.len()],
                })
                .collect();
            for (g, chunks) in contributions.iter().enumerate() {
                for (c, counts) in chunks.iter().enumerate() {
                    let share = splitter.share_for(j, g as u64, c as u64, counts);
                    for (t, w) in groups[g].counts.iter_mut().zip(&share) {
                        *t = t.wrapping_add(*w);
                    }
                }
            }
            println!("share server {j} is dead; its share was re-derived from the seed");
            parts.push(MaskedPart {
                digest,
                k: K,
                index: j,
                commitment,
                groups,
                channels: Vec::new(),
            });
        }
    }

    // No single part is the histogram — print the blinding in action.
    let totals = reconstruct(&parts).expect("complete share group");
    println!("\ngroup 0, bucket 0: true count = {}", totals[0][0]);
    for part in &parts {
        println!(
            "  share {} holds {:#018x} ({})",
            part.index,
            part.groups[0].counts[0],
            if part.groups[0].counts[0] == totals[0][0] { "unblinded!" } else { "blinded" },
        );
    }

    // Merge the reconstructed integer histograms — with the report sums
    // replayed from the dealer's retained chunks, in the same per-report
    // order — into the local session, and finalize.
    let mut part_groups = Vec::with_capacity(totals.len());
    for (g, counts) in totals.iter().enumerate() {
        let mut sum_reports = 0.0f64;
        let mut n_reports = 0usize;
        for chunk in &group_chunks[g] {
            for &r in chunk {
                sum_reports += r;
                n_reports += 1;
            }
        }
        assert_eq!(counts.iter().sum::<u64>(), n_reports as u64, "share lost or doubled");
        part_groups.push(PartGroup {
            counts: counts.iter().map(|&c| c as f64).collect(),
            sum_reports,
            n_reports,
        });
    }
    session
        .merge_part(&SessionPart { digest, groups: part_groups, channels: Vec::new() })
        .expect("reconstructed merge");
    let outputs = session.finalize(&Scheme::ALL).expect("finalizable session");

    // The exactness claim: a plaintext twin fed the identical chunks
    // finalizes bit-identically.
    let mut twin = DapSession::new(config, session.plan().clone(), PiecewiseMechanism::new)
        .expect("valid session");
    for (g, chunks) in group_chunks.iter().enumerate() {
        for chunk in chunks {
            twin.ingest_batch(g, chunk).expect("plaintext twin ingest");
        }
    }
    let plain = twin.finalize(&Scheme::ALL).expect("finalizable twin");
    for (a, b) in outputs.iter().zip(&plain) {
        assert_eq!(a.mean.to_bits(), b.mean.to_bits(), "masked tier changed an output bit");
        assert_eq!(a.min_variance.to_bits(), b.min_variance.to_bits());
    }

    println!("\ntrue honest mean: {truth:+.4}  (probed side: {:?})", outputs[0].side);
    println!("{:<12} {:>9} {:>9}", "scheme", "estimate", "error");
    for (scheme, out) in Scheme::ALL.iter().zip(&outputs) {
        println!("{:<12} {:>+9.4} {:>+9.4}", scheme.label(), out.mean, out.mean - truth);
    }

    // The dead server's thread already returned via its shutdown; the
    // survivors return sessions that blinded every word they held.
    let mut plaintext_reports = 0usize;
    for daemon in daemons {
        let served = daemon.join().expect("share server thread");
        plaintext_reports += (0..served.group_count()).map(|g| served.ingested(g)).sum::<usize>();
    }
    assert_eq!(plaintext_reports, 0, "a share server ingested a plaintext report");
    println!(
        "\nmasked finalize is bit-identical to the plaintext twin; \
         no share server ever held a report."
    );
}
