//! Rating-fraud scenario (the paper's §I motivation): a merchant hires a
//! coalition to post fake five-star reviews through a privacy-preserving
//! rating channel, and the platform defends the aggregate rating with DAP.
//!
//! Compares Ostrich, 50%-trimming, boxplot, isolation forest and the three
//! DAP schemes on the same poisoned collection.
//!
//! Run with `cargo run --release --example rating_fraud`.

use differential_aggregation::prelude::*;

/// Honest star ratings (1..=5) for a mediocre product, normalized to the PM
/// input domain [-1, 1].
fn honest_ratings(n: usize, rng: &mut dyn rand::RngCore) -> Vec<f64> {
    use rand::Rng;
    // 1★: 10%, 2★: 25%, 3★: 35%, 4★: 20%, 5★: 10%.
    let cdf = [0.10, 0.35, 0.70, 0.90, 1.0];
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            let stars = cdf.iter().position(|&c| u <= c).unwrap_or(4) as f64 + 1.0;
            (stars - 3.0) / 2.0 // 1..5 → -1..1
        })
        .collect()
}

fn to_stars(normalized: f64) -> f64 {
    normalized * 2.0 + 3.0
}

fn main() {
    let mut rng = estimation::rng::seeded(2023);
    let eps = 1.0;
    let n = 40_000;

    let honest = honest_ratings(n, &mut rng);
    let truth = estimation::stats::mean(&honest);
    println!("true average rating: {:.3} stars\n", to_stars(truth));

    // 20% hired reviewers flood the channel with maximal reports — the
    // long-tail attack the inflated PM domain invites (values near C count
    // far more than an honest 5★).
    let population = Population::with_gamma(honest, 0.20);
    let attack = PointAttack { value: Anchor::OfUpper(1.0) };

    // One shared poisoned collection for the single-batch defenses.
    let mech = PiecewiseMechanism::new(Epsilon::of(eps));
    let mut reports: Vec<f64> = population
        .honest
        .iter()
        .map(|&v| mech.perturb(v, &mut rng))
        .collect();
    reports.extend(attack.reports(population.byzantine, &mech, &mut rng));

    println!("{:<22} {:>8} {:>10}", "defense", "stars", "error");
    let defenses: Vec<Box<dyn MeanDefense>> = vec![
        Box::new(Ostrich),
        Box::new(Trimming::paper_default(Side::Right)),
        Box::new(BoxplotFilter::default()),
        Box::new(IsolationForest { trees: 50, subsample: 256, score_threshold: 0.6 }),
    ];
    for defense in &defenses {
        let est = defense.estimate_mean(&reports, &mut rng);
        println!(
            "{:<22} {:>8.3} {:>+10.3}",
            defense.label(),
            to_stars(est),
            to_stars(est) - to_stars(truth)
        );
    }

    for scheme in Scheme::ALL {
        let dap = Dap::new(DapConfig::paper_default(eps, scheme), PiecewiseMechanism::new)
            .expect("valid config");
        let output = dap.run(&population, &attack, &mut rng).expect("valid run");
        println!(
            "{:<22} {:>8.3} {:>+10.3}",
            scheme.label(),
            to_stars(output.mean),
            to_stars(output.mean) - to_stars(truth)
        );
    }
}
