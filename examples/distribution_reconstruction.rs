//! Distribution reconstruction under attack (the Fig. 8a scenario): a
//! collector wants the full histogram of a sensitive quantity — not just its
//! mean — through the Square Wave mechanism, while a coalition floods the
//! inflated band above the domain.
//!
//! Compares EMS that ignores the attack ("Ostrich") against EMF/EMF*/CEMF*
//! reconstructions, by Wasserstein-1 distance to the honest histogram.
//!
//! Run with `cargo run --release --example distribution_reconstruction`.

use differential_aggregation::prelude::*;
use differential_aggregation::estimation::{ems, Grid, PoisonRegion, TransformMatrix};
use differential_aggregation::emf::{cemf_star, cemf_star_threshold, emf, emf_star};

fn sparkline(h: &[f64]) -> String {
    const LEVELS: [char; 9] =
        [' ', '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}'];
    let peak = h.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    h.iter().map(|&f| LEVELS[((f / peak) * 8.0).round() as usize]).collect()
}

fn main() {
    let mut rng = estimation::rng::seeded(7);
    let eps = 1.0;
    let n = 60_000;
    let gamma = 0.25;

    let mech = SquareWave::new(Epsilon::of(eps));
    let m = (n as f64 * gamma).round() as usize;
    let honest = Dataset::Beta25.generate_unit(n - m, &mut rng);

    let mut reports: Vec<f64> = honest.iter().map(|&v| mech.perturb(v, &mut rng)).collect();
    let attack = UniformAttack::new(Anchor::AboveInputMax(0.5), Anchor::AboveInputMax(1.0));
    reports.extend(attack.reports(m, &mech, &mut rng));

    let cfg = EmfConfig::capped(reports.len(), eps, 128);
    let (olo, ohi) = mech.output_range();
    let counts = Grid::new(olo, ohi, cfg.d_out).counts(&reports);
    let truth = Grid::new(0.0, 1.0, cfg.d_in).frequencies(&honest);
    let width = 1.0 / cfg.d_in as f64;

    println!("truth       |{}|", sparkline(&truth));

    // Ostrich: EMS over everything, poison included.
    let clean_matrix = TransformMatrix::for_numeric(&mech, cfg.d_in, cfg.d_out, &PoisonRegion::None);
    let ostrich = ems::solve(&clean_matrix, &counts, &cfg.em).histogram;
    println!(
        "Ostrich/EMS |{}|  W1 = {:.4}",
        sparkline(&ostrich),
        estimation::stats::wasserstein_1(&ostrich, &truth, width)
    );

    // EMF family with the poison block on the upper inflation band.
    let matrix =
        TransformMatrix::for_numeric(&mech, cfg.d_in, cfg.d_out, &PoisonRegion::RightOf(1.0));
    let base = emf(&matrix, &counts, &cfg.em);
    let gamma_hat = base.poison_mass();
    for (label, outcome) in [
        ("EMF", base.clone()),
        ("EMF*", emf_star(&matrix, &counts, gamma_hat, &cfg.em)),
        ("CEMF*", {
            let thr = cemf_star_threshold(gamma_hat, matrix.poison_buckets().len());
            cemf_star(&matrix, &counts, gamma_hat, thr, &base, &cfg.em)
        }),
    ] {
        let total: f64 = outcome.normal.iter().sum();
        let hist: Vec<f64> = outcome.normal.iter().map(|&v| v / total.max(1e-12)).collect();
        println!(
            "{label:<11} |{}|  W1 = {:.4}",
            sparkline(&hist),
            estimation::stats::wasserstein_1(&hist, &truth, width)
        );
    }
    println!("\nreconstructed coalition share: {gamma_hat:.3} (true {gamma})");
}
