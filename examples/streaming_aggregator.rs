//! The client/aggregator split driven directly: per-user client
//! perturbation, sharded streaming ingestion on worker threads, an exact
//! `DapSession::merge`, and one `finalize` — the deployment shape the
//! `Dap::run` simulation wraps. The shards here are in-process mpsc
//! workers; `examples/tcp_aggregator.rs` runs the same topology over real
//! loopback TCP through the `dap-wire/v1` protocol.
//!
//! Run with `cargo run --release --example streaming_aggregator`.

use differential_aggregation::prelude::*;
use std::sync::mpsc;

fn main() {
    let mut rng = estimation::rng::seeded(7);
    let eps = 1.0;

    // 30 000 honest users hold Beta(2,5)-shaped values; a 20% coalition
    // injects into the top half of each group's PM output domain.
    let honest: Vec<f64> = (0..30_000)
        .map(|_| estimation::sampling::beta(2.0, 5.0, &mut rng) * 2.0 - 1.0)
        .collect();
    let truth = estimation::stats::mean(&honest);
    let population = Population::with_gamma(honest, 0.20);
    let attack = UniformAttack::of_upper(0.5, 1.0);

    // The aggregator fixes the deployment and the grouping plan. In a real
    // service the plan's `client_assignment(g)` would be pushed to each
    // user; here the simulation plays every client itself.
    let config = DapConfig::builder()
        .eps(eps)
        .scheme(Scheme::EmfStar)
        .max_d_out(128)
        .build()
        .expect("valid config");
    let plan = GroupPlan::build(population.total(), config.eps, config.eps0, &mut rng);
    let n_honest = population.honest.len();

    // Clients perturb locally, group by group; each group's report batch is
    // routed to one of three shard workers (group-sharded ingestion keeps
    // the merge bit-exact — see `DapSession::merge`).
    const SHARDS: usize = 3;
    let mut group_batches: Vec<(usize, Vec<f64>)> = Vec::new();
    for g in 0..plan.len() {
        let assign = plan.client_assignment(g);
        let mech = PiecewiseMechanism::new(assign.eps_t);
        let mut batch = Vec::new();
        let mut buf = vec![0.0f64; assign.k_t];
        let mut byz_members = 0usize;
        for &user in &plan.assignment[g] {
            if user < n_honest {
                // One user's k_t reports, perturbed on "their device".
                assign.perturb_into(&mech, population.honest[user], &mut buf, &mut rng);
                batch.extend_from_slice(&buf);
            } else {
                byz_members += 1;
            }
        }
        let mut poison = vec![0.0f64; byz_members * assign.k_t];
        let n = attack.reports_into(&mut poison, &mech, &mut rng);
        batch.extend_from_slice(&poison[..n]);
        group_batches.push((g, batch));
    }

    // Three shard sessions accumulate independently on worker threads; the
    // out-of-range/over-quota gate runs on each shard as reports arrive.
    let shards: Vec<DapSession<PiecewiseMechanism>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut senders = Vec::new();
        for _ in 0..SHARDS {
            let (tx, rx) = mpsc::channel::<(usize, Vec<f64>)>();
            let cfg = config;
            let plan = plan.clone();
            senders.push(tx);
            handles.push(scope.spawn(move || {
                let mut session =
                    DapSession::new(cfg, plan, PiecewiseMechanism::new).expect("valid session");
                for (g, batch) in rx {
                    session.ingest_batch(g, &batch).expect("well-formed reports");
                }
                session
            }));
        }
        for (g, batch) in group_batches {
            senders[g % SHARDS].send((g, batch)).expect("worker alive");
        }
        drop(senders);
        handles.into_iter().map(|h| h.join().expect("worker finished")).collect()
    });

    // Merge the shards and run probe → estimation → aggregation once.
    let merged = DapSession::merge(shards).expect("compatible shards");
    for g in 0..merged.group_count() {
        println!(
            "group {g}: eps_t = {:<7} quota = {:>6}  ingested = {:>6}",
            format!("{}", merged.plan().budgets[g]),
            merged.quota(g),
            merged.ingested(g),
        );
    }
    let outputs = merged.finalize(&Scheme::ALL).expect("finalizable session");

    println!("\ntrue honest mean: {truth:+.4}  (probed side: {:?})", outputs[0].side);
    println!("{:<12} {:>9} {:>9}", "scheme", "estimate", "error");
    for (scheme, out) in Scheme::ALL.iter().zip(&outputs) {
        println!("{:<12} {:>+9.4} {:>+9.4}", scheme.label(), out.mean, out.mean - truth);
    }

    // The session pipeline is exactly the one-shot simulation: same seeds,
    // same bits.
    let reference = Dap::new(config, PiecewiseMechanism::new)
        .expect("valid config")
        .run_schemes(&population, &attack, &Scheme::ALL, &mut estimation::rng::seeded(7))
        .expect("valid run");
    // (The reference consumes its own RNG from the seed, including the
    // population draws above, so compare only qualitatively here.)
    let gap = (reference[1].mean - outputs[1].mean).abs();
    println!("\none-shot driver (fresh stream) EMF* estimate: {:+.4}", reference[1].mean);
    assert!(gap < 0.2, "streaming and one-shot estimates far apart: {gap}");
}
