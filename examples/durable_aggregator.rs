//! An aggregator that survives being killed: the streaming session of
//! `examples/streaming_aggregator.rs` wrapped in write-ahead durability
//! (`protocol::storage`). Every accepted batch is journaled to disk
//! *before* it is acknowledged; halfway through the submission the
//! aggregator is "killed" (dropped without any shutdown), restarted on
//! the same journal directory, recovers the acknowledged prefix
//! bit-for-bit, compacts the journal into a checkpoint, finishes the
//! ingest, and finalizes — identically to a run that never crashed.
//!
//! Run with `cargo run --release --example durable_aggregator`.

use differential_aggregation::prelude::*;
use differential_aggregation::protocol::storage::{
    DurableOptions, DurableSession, FileBackend,
};

fn main() {
    let mut rng = estimation::rng::seeded(17);
    let dir = std::env::temp_dir().join(format!("dap-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 12 000 honest users hold Beta(2,5)-shaped values; a 20% coalition
    // poisons the upper half of each group's PM output domain.
    let honest: Vec<f64> = (0..12_000)
        .map(|_| estimation::sampling::beta(2.0, 5.0, &mut rng) * 2.0 - 1.0)
        .collect();
    let truth = estimation::stats::mean(&honest);
    let population = Population::with_gamma(honest, 0.20);
    let attack = UniformAttack::of_upper(0.5, 1.0);

    let config = DapConfig::builder()
        .eps(0.5)
        .scheme(Scheme::EmfStar)
        .max_d_out(64)
        .build()
        .expect("valid config");
    let plan = GroupPlan::build(population.total(), config.eps, config.eps0, &mut rng);
    let n_honest = population.honest.len();

    // Clients perturb locally, exactly as in the streaming example; the
    // batches are what flows into the (journaled) aggregator.
    let mut group_batches: Vec<(usize, Vec<f64>)> = Vec::new();
    for g in 0..plan.len() {
        let assign = plan.client_assignment(g);
        let mech = PiecewiseMechanism::new(assign.eps_t);
        let mut batch = Vec::new();
        let mut buf = vec![0.0f64; assign.k_t];
        let mut byz_members = 0usize;
        for &user in &plan.assignment[g] {
            if user < n_honest {
                assign.perturb_into(&mech, population.honest[user], &mut buf, &mut rng);
                batch.extend_from_slice(&buf);
            } else {
                byz_members += 1;
            }
        }
        let mut poison = vec![0.0f64; byz_members * assign.k_t];
        let n = attack.reports_into(&mut poison, &mech, &mut rng);
        batch.extend_from_slice(&poison[..n]);
        group_batches.push((g, batch));
    }

    // A fresh session factory: recovery replays the journal into an empty
    // session of the same deployment (same config, same plan).
    let fresh = || {
        DapSession::new(config, plan.clone(), PiecewiseMechanism::new)
            .expect("valid session")
    };

    // --- First life: journal every accepted batch, then "crash". -------
    let half = group_batches.len() / 2;
    let crashed_digest = {
        let backend = FileBackend::open(&dir).expect("open journal dir");
        let (mut durable, recovery) =
            DurableSession::open(fresh(), backend, DurableOptions::default())
                .expect("fresh journaled session");
        assert_eq!(recovery.replayed, 0, "nothing to recover on first boot");
        for (g, batch) in &group_batches[..half] {
            durable.ingest_batch(*g, batch).expect("acked batch");
        }
        println!(
            "first life : ingested {half} of {} group batches, journal at {} bytes",
            group_batches.len(),
            durable.journal().len_bytes()
        );
        durable.session().content_digest()
        // Dropped right here — no shutdown, no flush call. The write-ahead
        // journal is the only survivor.
    };

    // --- Second life: recover, verify, compact, finish. ----------------
    let backend = FileBackend::open(&dir).expect("reopen journal dir");
    let (mut durable, recovery) =
        DurableSession::open(fresh(), backend, DurableOptions::default())
            .expect("recover journaled session");
    println!(
        "second life: replayed {} records -> state digest {:#018x}",
        recovery.replayed,
        durable.session().content_digest()
    );
    assert_eq!(
        durable.session().content_digest(),
        crashed_digest,
        "recovery must be bit-identical to the crashed session"
    );

    // Compact the replayed history into one checkpoint part, then finish
    // the submission.
    durable.checkpoint().expect("compact");
    println!(
        "checkpointed: journal back to {} bytes",
        durable.journal().len_bytes()
    );
    for (g, batch) in &group_batches[half..] {
        durable.ingest_batch(*g, batch).expect("acked batch");
    }

    // The never-crashed reference: one session, same batches, same order.
    let mut reference = fresh();
    for (g, batch) in &group_batches {
        reference.ingest_batch(*g, batch).expect("reference batch");
    }
    assert_eq!(
        durable.session().content_digest(),
        reference.content_digest(),
        "crash + recovery must not change the final state"
    );

    let out = &durable.session().finalize(&[Scheme::EmfStar]).expect("finalize")[0];
    let ref_out = &reference.finalize(&[Scheme::EmfStar]).expect("finalize")[0];
    assert_eq!(out.mean.to_bits(), ref_out.mean.to_bits(), "finalize diverged");
    println!(
        "finalized  : EMF* mean {:+.4} (truth {truth:+.4}) — identical to the uninterrupted run",
        out.mean
    );

    let _ = std::fs::remove_dir_all(&dir);
}
