//! The aggregator genuinely *served*: three `dap-wire/v1` daemons on
//! loopback TCP (each a process-worth of `DapSession` behind
//! `serve_session`), a coordinator streaming a 100 000-user population
//! with disjoint group ownership, an **exact** merge of the pulled
//! session parts, and one finalize — the networked counterpart of
//! `examples/streaming_aggregator.rs` (which shards over in-process mpsc
//! channels instead of sockets).
//!
//! Every group's reports live wholly on one daemon and the wire carries
//! f64s as exact bit patterns, so the merged session is bit-identical to
//! one that ingested everything locally.
//!
//! Run with `cargo run --release --example tcp_aggregator`.

use differential_aggregation::prelude::*;
use differential_aggregation::protocol::net::{serve_session, WireClient};
use std::net::TcpListener;

fn main() {
    const USERS: usize = 100_000;
    const DAEMONS: usize = 3;
    let eps = 1.0;

    // 85 000 honest users hold Beta(2,5)-shaped values scaled to [-1, 1];
    // a 15% coalition injects into the top half of each group's PM output
    // domain.
    let mut rng = estimation::rng::seeded(21);
    let gamma = 0.15;
    let byzantine = (USERS as f64 * gamma).round() as usize;
    let honest: Vec<f64> = (0..USERS - byzantine)
        .map(|_| estimation::sampling::beta(2.0, 5.0, &mut rng) * 2.0 - 1.0)
        .collect();
    let truth = estimation::stats::mean(&honest);
    let attack = UniformAttack::of_upper(0.5, 1.0);

    // The deployment: config + grouping plan, shared by every party (a
    // real rollout would distribute these; the hello handshake verifies
    // agreement via the session state digest).
    let config = DapConfig::builder()
        .eps(eps)
        .scheme(Scheme::EmfStar)
        .max_d_out(128)
        .build()
        .expect("valid config");
    let plan = GroupPlan::build(USERS, config.eps, config.eps0, &mut rng);

    // Three daemons on OS-assigned loopback ports, each serving its own
    // session of the same deployment.
    let mut addrs = Vec::new();
    let mut daemons = Vec::new();
    for _ in 0..DAEMONS {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        addrs.push(listener.local_addr().expect("local addr").to_string());
        let (cfg, plan) = (config, plan.clone());
        daemons.push(std::thread::spawn(move || {
            let session =
                DapSession::new(cfg, plan, PiecewiseMechanism::new).expect("valid session");
            serve_session(listener, session, |_| None).expect("daemon serves")
        }));
    }

    // The coordinator keeps an empty twin session (the merge base) and
    // streams each group's reports to the daemon owning it.
    let mut session =
        DapSession::new(config, plan, PiecewiseMechanism::new).expect("valid session");
    let digest = session.state_digest();
    let mut clients: Vec<WireClient> = addrs
        .iter()
        .map(|addr| {
            let mut c = WireClient::connect(addr).expect("daemon reachable");
            c.hello(digest).expect("compatible deployment");
            c
        })
        .collect();

    let n_honest = honest.len();
    let mut streamed = 0usize;
    for g in 0..session.group_count() {
        let owner = g % clients.len();
        let assign = session.client_assignment(g).expect("known group");
        let mech = PiecewiseMechanism::new(assign.eps_t);
        let mut buf = vec![0.0f64; assign.k_t];
        let mut chunk: Vec<f64> = Vec::with_capacity(8192 + assign.k_t);
        let mut byz_members = 0usize;
        for i in 0..session.plan().assignment[g].len() {
            let user = session.plan().assignment[g][i];
            if user < n_honest {
                // One user's k_t reports, perturbed on "their device",
                // shipped in order (order is part of the exactness
                // contract for the running report sums).
                assign.perturb_into(&mech, honest[user], &mut buf, &mut rng);
                chunk.extend_from_slice(&buf);
                if chunk.len() >= 8192 {
                    streamed += chunk.len();
                    clients[owner].ingest_batch(g, &chunk).expect("in-range reports");
                    chunk.clear();
                }
            } else {
                byz_members += 1;
            }
        }
        let mut poison = vec![0.0f64; byz_members * assign.k_t];
        let n_poison = attack.reports_into(&mut poison, &mech, &mut rng);
        chunk.extend_from_slice(&poison[..n_poison]);
        streamed += chunk.len();
        clients[owner].ingest_batch(g, &chunk).expect("in-range reports");
    }

    // Pull every daemon's serialized part and merge — exact, because each
    // group lives wholly on one daemon.
    for client in &mut clients {
        let part = client.pull_part().expect("part pulled");
        session.merge_part(&part).expect("compatible part");
    }
    println!("streamed {streamed} reports to {DAEMONS} daemons over TCP\n");
    for g in 0..session.group_count() {
        println!(
            "group {g}: eps_t = {:<7} daemon = {}  quota = {:>6}  merged = {:>6}",
            format!("{}", session.plan().budgets[g]),
            g % DAEMONS,
            session.quota(g),
            session.ingested(g),
        );
    }

    let outputs = session.finalize(&Scheme::ALL).expect("finalizable session");
    println!("\ntrue honest mean: {truth:+.4}  (probed side: {:?})", outputs[0].side);
    println!("{:<12} {:>9} {:>9}", "scheme", "estimate", "error");
    for (scheme, out) in Scheme::ALL.iter().zip(&outputs) {
        println!("{:<12} {:>+9.4} {:>+9.4}", scheme.label(), out.mean, out.mean - truth);
    }
    assert!((outputs[1].mean - truth).abs() < 0.1, "EMF* estimate far from truth");

    // Stop the daemons; each returns its session, which must hold exactly
    // the reports routed to it.
    for client in &mut clients {
        client.shutdown().expect("shutdown accepted");
    }
    let mut daemon_reports = 0usize;
    for daemon in daemons {
        let served = daemon.join().expect("daemon thread");
        daemon_reports += (0..served.group_count()).map(|g| served.ingested(g)).sum::<usize>();
    }
    assert_eq!(daemon_reports, streamed, "every streamed report landed on one daemon");
    println!("\n{daemon_reports} reports ingested across daemons; merge was exact.");
}
