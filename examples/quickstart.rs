//! Quickstart: estimate a mean under LDP while a colluding coalition poisons
//! the collection.
//!
//! Run with `cargo run --release --example quickstart`.

use differential_aggregation::prelude::*;

fn main() {
    let mut rng = estimation::rng::seeded(42);

    // 50 000 honest users hold values in [-1, 1] (imagine normalized
    // incomes, ratings, sensor readings…).
    let honest = Dataset::Taxi.generate_signed(50_000, &mut rng);
    let truth = estimation::stats::mean(&honest);

    // A 25% coalition injects values into the top half of the Piecewise
    // Mechanism's inflated output domain [C/2, C] to drag the mean up.
    let population = Population::with_gamma(honest, 0.25);
    let attack = UniformAttack::of_upper(0.5, 1.0);

    // What the collector would get by ignoring the attack.
    let eps = 1.0;
    let mech = PiecewiseMechanism::new(Epsilon::of(eps));
    let mut reports: Vec<f64> = population
        .honest
        .iter()
        .map(|&v| mech.perturb(v, &mut rng))
        .collect();
    reports.extend(attack.reports(population.byzantine, &mech, &mut rng));
    let ostrich = Ostrich.estimate_mean(&reports, &mut rng);

    // The Differential Aggregation Protocol.
    let dap = Dap::new(DapConfig::paper_default(eps, Scheme::CemfStar), PiecewiseMechanism::new)
        .expect("valid config");
    let output = dap.run(&population, &attack, &mut rng).expect("valid run");

    println!("true honest mean      : {truth:+.4}");
    println!("Ostrich (no defense)  : {ostrich:+.4}  (error {:+.4})", ostrich - truth);
    println!(
        "DAP_CEMF*             : {:+.4}  (error {:+.4})",
        output.mean,
        output.mean - truth
    );
    println!(
        "probed coalition      : side={}, gamma={:.3} (true 0.25)",
        output.side, output.gamma
    );
    println!("groups                : {}", output.groups.len());
    for g in &output.groups {
        println!(
            "  eps={:<8.4} reports={:<7} M_t={:+.4} weight={:.3}",
            g.eps_t, g.n_reports, g.mean_t, g.weight
        );
    }
}
