//! Categorical survey scenario (Fig. 9c-d): a health agency collects
//! age-at-death records with k-RR under LDP; a coalition inflates selected
//! age groups to distort the published frequency table.
//!
//! Run with `cargo run --release --example categorical_survey`.

use differential_aggregation::prelude::*;
use differential_aggregation::protocol::categorical::{
    estimate_frequencies, ostrich_frequencies, simulate_reports, CategoricalConfig,
};

fn main() {
    let mut rng = estimation::rng::seeded(14);
    let eps = 1.0;
    let k = differential_aggregation::datasets::COVID_GROUPS;
    let mech = KRandomizedResponse::new(Epsilon::of(eps), k).unwrap();

    let honest = differential_aggregation::datasets::sample_covid(60_000, &mut rng);
    let mut truth = vec![0.0; k];
    for &v in &honest {
        truth[v] += 1.0;
    }
    truth.iter_mut().for_each(|t| *t /= honest.len() as f64);

    // The coalition inflates groups 10-12 (the 85+ tail and residuals).
    let poison_targets = [10usize, 11, 12];
    let byzantine = 15_000;
    let counts = simulate_reports(&mech, &honest, byzantine, &poison_targets, &mut rng);

    let cfg = CategoricalConfig::paper_default(eps, Scheme::EmfStar);
    let dap = estimate_frequencies(&mech, &counts, &cfg);
    let ostrich = ostrich_frequencies(&mech, &counts);

    println!("poisoned groups injected: {poison_targets:?}");
    println!("poisoned groups located : {:?}", dap.poisoned);
    println!("reconstructed gamma     : {:.3}\n", dap.gamma);
    println!("{:>5} {:>10} {:>10} {:>10}", "group", "truth", "Ostrich", "DAP_EMF*");
    for g in 0..k {
        println!(
            "{g:>5} {:>10.4} {:>10.4} {:>10.4}",
            truth[g], ostrich[g], dap.frequencies[g]
        );
    }

    let mse = |est: &[f64]| -> f64 {
        est.iter().zip(&truth).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / k as f64
    };
    println!("\nMSE Ostrich : {:.3e}", mse(&ostrich));
    println!("MSE DAP_EMF*: {:.3e}", mse(&dap.frequencies));
}
